// Property-based tests: parameterized sweeps over schedulers, cluster
// shapes, seeds and task mixes asserting the runtime's core invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "hpo/algorithms.hpp"
#include "jsonlite/json.hpp"
#include "hpo/tpe.hpp"
#include "runtime/runtime.hpp"

namespace chpo {
namespace {

using rt::Constraint;
using rt::Direction;
using rt::Future;
using rt::Placement;
using rt::Runtime;
using rt::RuntimeOptions;
using rt::TaskContext;
using rt::TaskDef;

// ---------------------------------------------------------------------
// Invariant 1: no core of any node is ever occupied by two tasks at once,
// for every scheduler policy, cluster shape and random task mix.
// ---------------------------------------------------------------------

struct SchedulingCase {
  const char* scheduler;
  std::size_t nodes;
  unsigned cpus;
  std::uint64_t seed;
};

class SchedulerInvariants : public ::testing::TestWithParam<SchedulingCase> {};

TEST_P(SchedulerInvariants, NoCoreOversubscriptionAndAllTasksFinish) {
  const SchedulingCase param = GetParam();
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "p";
  node.cpus = param.cpus;
  opts.cluster = cluster::homogeneous(param.nodes, node);
  opts.scheduler = param.scheduler;
  opts.simulate = true;
  Runtime runtime(std::move(opts));

  Rng rng(param.seed);
  const int n_tasks = 40;
  for (int i = 0; i < n_tasks; ++i) {
    TaskDef def;
    def.name = "mix";
    def.constraint = {.cpus = static_cast<unsigned>(rng.next_int(1, param.cpus))};
    def.priority = rng.next_bool(0.2);
    def.body = [](TaskContext&) { return std::any(1); };
    const double seconds = rng.next_uniform(1.0, 20.0);
    def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
    runtime.submit(def);
  }
  runtime.barrier();

  const auto events = runtime.trace().events();
  // Collect (node, core) busy intervals and check pairwise disjointness.
  std::map<std::pair<int, unsigned>, std::vector<std::pair<double, double>>> intervals;
  std::size_t runs = 0;
  for (const auto& e : events) {
    if (e.kind != trace::EventKind::TaskRun) continue;
    ++runs;
    for (unsigned core : e.cores)
      intervals[{e.node, core}].emplace_back(e.t_start, e.t_end);
  }
  EXPECT_EQ(runs, static_cast<std::size_t>(n_tasks));
  for (auto& [key, spans] : intervals) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].second, spans[i].first + 1e-12)
          << "core " << key.second << " of node " << key.first << " double-booked";
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyClusterSweep, SchedulerInvariants,
    ::testing::Values(SchedulingCase{"fifo", 1, 4, 1}, SchedulingCase{"fifo", 3, 8, 2},
                      SchedulingCase{"priority", 1, 4, 3}, SchedulingCase{"priority", 4, 16, 4},
                      SchedulingCase{"priority", 2, 2, 5}, SchedulingCase{"locality", 2, 8, 6},
                      SchedulingCase{"locality", 5, 4, 7}, SchedulingCase{"fifo", 2, 48, 8},
                      SchedulingCase{"priority", 8, 8, 9}, SchedulingCase{"locality", 1, 16, 10}));

// ---------------------------------------------------------------------
// Invariant 2: execution order always respects dependencies — for random
// DAGs, every task runs only after all of its predecessors finished.
// ---------------------------------------------------------------------

class DagOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagOrdering, PredecessorsAlwaysFinishFirst) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(2, node);
  opts.simulate = true;
  Runtime runtime(std::move(opts));

  Rng rng(GetParam());
  std::vector<Future> futures;
  std::vector<std::vector<std::size_t>> predecessors;
  for (int i = 0; i < 30; ++i) {
    // Each task depends on up to 3 random earlier tasks.
    std::vector<rt::Param> params;
    std::vector<std::size_t> preds;
    if (!futures.empty()) {
      const int k = static_cast<int>(rng.next_int(0, 3));
      for (int j = 0; j < k; ++j) {
        const std::size_t p = rng.next_index(futures.size());
        params.push_back({futures[p].data, Direction::In});
        preds.push_back(p);
      }
    }
    TaskDef def;
    def.name = "dag";
    def.body = [](TaskContext&) { return std::any(1); };
    const double seconds = rng.next_uniform(0.5, 5.0);
    def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
    futures.push_back(runtime.submit(def, params));
    predecessors.push_back(std::move(preds));
  }
  runtime.barrier();

  // Map task id -> (start, end) from the trace.
  std::map<std::uint64_t, std::pair<double, double>> times;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::TaskRun) times[e.task_id] = {e.t_start, e.t_end};
  ASSERT_EQ(times.size(), futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i)
    for (std::size_t p : predecessors[i])
      EXPECT_GE(times[futures[i].producer].first, times[futures[p].producer].second - 1e-12)
          << "task " << i << " started before predecessor " << p << " ended";
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DagOrdering, ::testing::Range<std::uint64_t>(100, 110));

// ---------------------------------------------------------------------
// Invariant 3: fault injection never loses or duplicates a result; any mix
// of transient failures still yields every task's value exactly once.
// ---------------------------------------------------------------------

class FaultSweep : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweep, AllResultsSurviveTransientFailures) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(3, node);
  opts.simulate = true;
  opts.fault_policy.max_attempts = 25;  // transient failures must not kill tasks
  opts.injector = rt::FaultInjector(GetParam() * 1e6, GetParam());
  Runtime runtime(std::move(opts));

  std::vector<Future> futures;
  for (int i = 0; i < 30; ++i) {
    TaskDef def;
    def.name = "value";
    def.body = [i](TaskContext&) { return std::any(i * 10); };
    futures.push_back(runtime.submit(def));
  }
  for (int i = 0; i < 30; ++i)
    EXPECT_EQ(runtime.wait_on_as<int>(futures[static_cast<std::size_t>(i)]), i * 10);
}

INSTANTIATE_TEST_SUITE_P(FailureRates, FaultSweep, ::testing::Values(0.0, 0.1, 0.3, 0.5));

// ---------------------------------------------------------------------
// Invariant 4: grid search enumerates exactly |d1| x |d2| x ... configs
// with no duplicates, for every space shape.
// ---------------------------------------------------------------------

class GridShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GridShapes, ExactCrossProduct) {
  const auto [a, b, c] = GetParam();
  hpo::SearchSpace space;
  json::Array va, vb;
  for (int i = 0; i < a; ++i) va.emplace_back(std::string("opt") + std::to_string(i));
  for (int i = 0; i < b; ++i) vb.emplace_back(i * 10);
  space.add_categorical("optimizer", va);
  space.add_categorical("num_epochs", vb);
  space.add_int("batch_exp", 0, c - 1);

  hpo::GridSearch grid(space);
  std::set<std::string> seen;
  while (auto config = grid.next()) seen.insert(json::serialize(*config));
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(a * b * c));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 3, 3},
                                           std::tuple{2, 5, 1}, std::tuple{4, 1, 6},
                                           std::tuple{2, 2, 7}));

// ---------------------------------------------------------------------
// Invariant 5: DES makespan for n equal tasks on c cores is exactly
// ceil(n/c) * duration — the canonical queueing identity.
// ---------------------------------------------------------------------

class QueueingIdentity
    : public ::testing::TestWithParam<std::tuple<int /*tasks*/, unsigned /*cores*/>> {};

TEST_P(QueueingIdentity, WaveMakespan) {
  const auto [n_tasks, cores] = GetParam();
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = cores;
  opts.cluster = cluster::homogeneous(1, node);
  opts.simulate = true;
  Runtime runtime(std::move(opts));
  for (int i = 0; i < n_tasks; ++i) {
    TaskDef def;
    def.name = "wave";
    def.body = [](TaskContext&) { return std::any(); };
    def.cost = [](const Placement&, const cluster::NodeSpec&) { return 7.0; };
    runtime.submit(def);
  }
  runtime.barrier();
  const double waves = std::ceil(static_cast<double>(n_tasks) / cores);
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), waves * 7.0);
}

INSTANTIATE_TEST_SUITE_P(Waves, QueueingIdentity,
                         ::testing::Values(std::tuple{1, 1u}, std::tuple{8, 4u},
                                           std::tuple{9, 4u}, std::tuple{27, 24u},
                                           std::tuple{27, 27u}, std::tuple{5, 8u}));

// ---------------------------------------------------------------------
// Invariant 6: @multinode tasks never share a core with anyone and always
// occupy exactly constraint.nodes distinct nodes.
// ---------------------------------------------------------------------

class MultinodeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultinodeInvariants, SlicesAreDisjointAndComplete) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 8;
  opts.cluster = cluster::homogeneous(4, node);
  opts.simulate = true;
  Runtime runtime(std::move(opts));
  Rng rng(GetParam());
  std::vector<unsigned> wanted_nodes;
  for (int i = 0; i < 20; ++i) {
    TaskDef def;
    def.name = "mix";
    const unsigned nodes = static_cast<unsigned>(rng.next_int(1, 3));
    def.constraint = {.cpus = static_cast<unsigned>(rng.next_int(1, 4)), .nodes = nodes};
    wanted_nodes.push_back(nodes);
    def.body = [](TaskContext& ctx) { return std::any(ctx.placement().node_count()); };
    const double seconds = rng.next_uniform(1.0, 5.0);
    def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
    runtime.submit(def);
  }
  runtime.barrier();

  // Each task id must appear on exactly `nodes` distinct nodes with
  // identical intervals, and no (node, core) is double-booked.
  std::map<std::uint64_t, std::set<int>> task_nodes;
  std::map<std::pair<int, unsigned>, std::vector<std::pair<double, double>>> intervals;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind != trace::EventKind::TaskRun) continue;
    task_nodes[e.task_id].insert(e.node);
    for (unsigned core : e.cores) intervals[{e.node, core}].emplace_back(e.t_start, e.t_end);
  }
  ASSERT_EQ(task_nodes.size(), wanted_nodes.size());
  for (const auto& [task, nodes] : task_nodes)
    EXPECT_EQ(nodes.size(), wanted_nodes[task]) << "task " << task;
  for (auto& [key, spans] : intervals) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      EXPECT_LE(spans[i - 1].second, spans[i].first + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultinodeInvariants, ::testing::Range<std::uint64_t>(40, 46));

// ---------------------------------------------------------------------
// Invariant 7: every model-based algorithm only ever proposes configs
// inside the declared domains, whatever scores it observes.
// ---------------------------------------------------------------------

class ProposalsInDomain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProposalsInDomain, GpAndTpeRespectDomains) {
  hpo::SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam"), json::Value("SGD")});
  space.add_float("lr", 1e-5, 1e-1, /*log=*/true);
  space.add_int("hidden", 8, 128);

  Rng score_rng(GetParam() * 13 + 1);
  const auto check = [&](hpo::SearchAlgorithm& algorithm) {
    while (auto c = algorithm.next()) {
      const std::string opt = hpo::config_string(*c, "optimizer");
      EXPECT_TRUE(opt == "Adam" || opt == "SGD");
      const double lr = hpo::config_double(*c, "lr");
      EXPECT_GE(lr, 1e-5);
      EXPECT_LE(lr, 1e-1);
      const auto hidden = hpo::config_int(*c, "hidden");
      EXPECT_GE(hidden, 8);
      EXPECT_LE(hidden, 128);
      // Adversarial scores: extremes and NaN-free noise.
      algorithm.tell(*c, score_rng.next_bool(0.1) ? 1e6 : score_rng.next_double());
    }
  };
  hpo::GpBayesOpt gp(space, {.max_evals = 15, .n_init = 3, .seed = GetParam()});
  check(gp);
  hpo::TpeSearch tpe(space, {.max_evals = 15, .n_init = 3, .seed = GetParam()});
  check(tpe);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProposalsInDomain, ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Invariant 8: sim and thread backends compute identical values for the
// same seeded program.
// ---------------------------------------------------------------------

class BackendEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BackendEquivalence, SameValuesOnBothBackends) {
  const auto program = [&](bool simulate) {
    RuntimeOptions opts;
    cluster::NodeSpec node;
    node.cpus = 4;
    opts.cluster = cluster::homogeneous(2, node);
    opts.simulate = simulate;
    opts.seed = GetParam();
    Runtime runtime(std::move(opts));
    std::vector<Future> stage1;
    for (int i = 0; i < 6; ++i) {
      TaskDef def;
      def.name = "rng_task";
      def.body = [](TaskContext& ctx) {
        return std::any(static_cast<long>(ctx.rng().next_int(0, 1000000)));
      };
      stage1.push_back(runtime.submit(def));
    }
    long total = 0;
    for (auto& f : stage1) total += runtime.wait_on_as<long>(f);
    return total;
  };
  EXPECT_EQ(program(false), program(true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence, ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Invariant 9: JSON serialization round-trips arbitrary generated values.
// ---------------------------------------------------------------------

namespace {

json::Value random_json(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.next_int(0, depth > 0 ? 6 : 4));
  switch (kind) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.next_bool(0.5));
    case 2: return json::Value(rng.next_int(-1000000, 1000000));
    case 3: return json::Value(rng.next_uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      const auto len = rng.next_index(12);
      for (std::size_t i = 0; i < len; ++i)
        s.push_back(static_cast<char>(rng.next_int(32, 126)));
      return json::Value(std::move(s));
    }
    case 5: {
      json::Array arr;
      const auto len = rng.next_index(4);
      for (std::size_t i = 0; i < len; ++i) arr.push_back(random_json(rng, depth - 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Value obj;
      const auto len = rng.next_index(4);
      for (std::size_t i = 0; i < len; ++i)
        obj.set("k" + std::to_string(i), random_json(rng, depth - 1));
      if (obj.is_null()) obj.set("k", json::Value(1));  // keep it an object
      return obj;
    }
  }
}

}  // namespace

class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTrip, SerializeParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const json::Value original = random_json(rng, 3);
    const json::Value compact = json::parse(json::serialize(original));
    EXPECT_EQ(compact, original);
    const json::Value pretty = json::parse(json::serialize_pretty(original));
    EXPECT_EQ(pretty, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range<std::uint64_t>(500, 506));

// ---------------------------------------------------------------------
// Invariant 10: RNG uniformity — chi-square on byte buckets stays within
// generous bounds across seeds (a smoke test against regressions).
// ---------------------------------------------------------------------

class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, ChiSquareWithinBounds) {
  Rng rng(GetParam());
  constexpr int kBuckets = 64;
  constexpr int kDraws = 64 * 500;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(rng.next_index(kBuckets))];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 dof: mean 63, std ~11.2. |z| < 5 is a very generous regression band.
  EXPECT_GT(chi2, 63.0 - 5 * 11.3);
  EXPECT_LT(chi2, 63.0 + 5 * 11.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformity, ::testing::Range<std::uint64_t>(900, 906));

// ---------------------------------------------------------------------
// Invariant 11: graph + engine scale — a 1000-task mixed DAG completes
// with every constraint honoured (smoke against quadratic blowups too).
// ---------------------------------------------------------------------

TEST(Stress, ThousandTaskDag) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 16;
  opts.cluster = cluster::homogeneous(4, node);
  opts.simulate = true;
  Runtime runtime(std::move(opts));
  Rng rng(4242);
  std::vector<Future> futures;
  long expected_sum = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<rt::Param> params;
    if (!futures.empty() && rng.next_bool(0.3))
      params.push_back({futures[rng.next_index(futures.size())].data, Direction::In});
    TaskDef def;
    def.name = "stress";
    def.constraint = {.cpus = static_cast<unsigned>(rng.next_int(1, 4))};
    def.body = [i](TaskContext&) { return std::any(static_cast<long>(i)); };
    def.cost = [](const Placement&, const cluster::NodeSpec&) { return 0.5; };
    futures.push_back(runtime.submit(def, params));
    expected_sum += i;
  }
  long sum = 0;
  for (auto& f : futures) sum += runtime.wait_on_as<long>(f);
  EXPECT_EQ(sum, expected_sum);
  EXPECT_EQ(runtime.analyze().task_count(), 1000u);
}

// ---------------------------------------------------------------------
// FaultInjector / FaultPolicy / SpeculationPolicy properties: forced-
// failure accounting, backoff monotonicity and cap, straggler threshold
// gating, and duplicate placement restrictions.
// ---------------------------------------------------------------------

class ForcedFailureAccounting : public ::testing::TestWithParam<int> {};

TEST_P(ForcedFailureAccounting, EveryForcedFailureIsConsumedExactlyOnce) {
  const int forced = GetParam();
  rt::FaultInjector injector;
  injector.force_task_failures(7, forced);
  int observed = 0;
  for (int attempt = 1; attempt <= forced + 5; ++attempt)
    observed += injector.should_fail(7, attempt) ? 1 : 0;
  EXPECT_EQ(observed, forced);                // consumed exactly, then clean
  EXPECT_FALSE(injector.should_fail(7, 99));  // stays exhausted
  EXPECT_FALSE(injector.should_fail(8, 1));   // other tasks untouched
}

INSTANTIATE_TEST_SUITE_P(Counts, ForcedFailureAccounting, ::testing::Values(0, 1, 2, 3, 7));

TEST_P(ForcedFailureAccounting, RuntimeAttemptsMatchForcedFailures) {
  // End-to-end accounting: n forced failures cost exactly n+1 attempts
  // (while n+1 <= max_attempts).
  const int forced = GetParam();
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(2, node);
  opts.simulate = true;
  opts.fault_policy.max_attempts = forced + 2;
  opts.injector.force_task_failures(0, forced);
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "accounted";
  def.body = [](TaskContext&) { return std::any(1); };
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  EXPECT_EQ(runtime.graph().task(f.producer).attempts_made, forced + 1);
  EXPECT_EQ(runtime.analyze().failure_count(), static_cast<std::size_t>(forced));
}

TEST(BackoffProperties, DelaysAreMonotoneAndCapped) {
  rt::FaultPolicy policy;
  policy.backoff_base_seconds = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_seconds = 3.0;
  double previous = 0.0;
  for (int n = 1; n <= 20; ++n) {
    const double delay = policy.retry_delay(n);
    EXPECT_GE(delay, previous) << "backoff must be monotone at attempt " << n;
    EXPECT_LE(delay, policy.backoff_max_seconds) << "backoff must respect the cap";
    previous = delay;
  }
  EXPECT_DOUBLE_EQ(policy.retry_delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.retry_delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.retry_delay(20), 3.0);  // capped
}

TEST(BackoffProperties, DisabledByDefaultAndForNonPositiveBase) {
  rt::FaultPolicy defaults;
  EXPECT_DOUBLE_EQ(defaults.retry_delay(1), 0.0);  // paper behaviour
  rt::FaultPolicy off;
  off.backoff_base_seconds = -1.0;
  for (int n = 1; n < 5; ++n) EXPECT_DOUBLE_EQ(off.retry_delay(n), 0.0);
}

TEST(SpeculationProperties, ThresholdNeverFiresBelowTwoObservations) {
  rt::SpeculationPolicy policy;
  policy.enabled = true;
  policy.min_observations = 1;  // hostile setting: must still clamp to 2
  rt::SpeculationTracker tracker(policy);
  EXPECT_FALSE(tracker.straggler_threshold("t").has_value());
  tracker.record("t", 10.0);
  EXPECT_FALSE(tracker.straggler_threshold("t").has_value());
  tracker.record("t", 12.0);
  EXPECT_TRUE(tracker.straggler_threshold("t").has_value());
  EXPECT_FALSE(tracker.straggler_threshold("other").has_value());
}

TEST(SpeculationProperties, ThresholdScalesWithQuantile) {
  rt::SpeculationPolicy policy;
  policy.quantile = 0.5;
  policy.straggler_multiplier = 3.0;
  policy.min_observations = 2;
  rt::SpeculationTracker tracker(policy);
  for (double d : {1.0, 2.0, 3.0, 4.0}) tracker.record("t", d);
  ASSERT_TRUE(tracker.baseline("t").has_value());
  EXPECT_DOUBLE_EQ(*tracker.baseline("t"), 3.0);  // index 0.5*4=2 of sorted
  EXPECT_DOUBLE_EQ(*tracker.straggler_threshold("t"), 9.0);
  EXPECT_EQ(tracker.observations("t"), 4u);
}

TEST(SpeculationProperties, DuplicateNeverPlacedOnBlacklistedOrOriginalNode) {
  // 3 nodes x 1 cpu. The flaky task fails once on node 0 — with
  // same_node_retries=0 the failure blacklists that node — then straggles
  // on node 1 (300 s). The duplicate must land on node 2, the only node
  // that is neither blacklisted nor the straggler's own.
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 1;
  opts.cluster = cluster::homogeneous(3, node);
  opts.simulate = true;
  opts.fault_policy.same_node_retries = 0;
  opts.speculation.enabled = true;
  opts.speculation.min_observations = 2;
  opts.speculation.straggler_multiplier = 2.0;
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));

  TaskDef flaky;
  flaky.name = "job";
  flaky.constraint = {.cpus = 1};
  flaky.body = [](TaskContext&) { return std::any(1); };
  flaky.cost = [](const Placement& p, const cluster::NodeSpec&) {
    return p.node == 1 ? 300.0 : 10.0;
  };
  TaskDef quick;
  quick.name = "job";
  quick.constraint = {.cpus = 1};
  quick.body = [](TaskContext&) { return std::any(1); };
  quick.cost = [](const Placement&, const cluster::NodeSpec&) { return 10.0; };

  const Future f = runtime.submit(flaky);  // first-fit: node 0
  for (int i = 0; i < 2; ++i) runtime.submit(quick);
  runtime.barrier();

  // Failed at 10 on node 0, rescheduled onto node 1 (straggles), duplicate
  // due at 10+20=30 on node 2, done at 40.
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  EXPECT_DOUBLE_EQ(runtime.now(), 40.0);
  const auto& record = runtime.graph().task(f.producer);
  EXPECT_NE(std::find(record.excluded_nodes.begin(), record.excluded_nodes.end(), 0),
            record.excluded_nodes.end());
  int speculative_node = -1, launches = 0;
  for (const auto& e : runtime.trace().events()) {
    if (e.kind != trace::EventKind::SpeculativeLaunch) continue;
    ++launches;
    speculative_node = e.node;
  }
  EXPECT_EQ(launches, 1);
  EXPECT_EQ(speculative_node, 2);  // not 0 (blacklisted), not 1 (original)
}

// ---------------------------------------------------------------------
// Invariant 12 (batch submission): a seeded random DAG submitted in
// waves through submit_batch satisfies the chaos invariants identically
// on both backends — every task reaches exactly one terminal state (the
// terminal_seq stamps form a permutation), no body observes an
// unfinished predecessor or a value other than its committed result,
// wait_any yields strictly increasing completion order, and completions
// deliver exactly once through both channels (callbacks and drains).
// ---------------------------------------------------------------------

class BatchDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchDeterminism, ChaosInvariantsHoldOnBothBackends) {
  constexpr int kWaves = 4;
  constexpr int kPerWave = 10;
  constexpr int kN = kWaves * kPerWave;
  for (const bool simulate : {true, false}) {
    SCOPED_TRACE(simulate ? "sim" : "thread");
    // Shared with task bodies, which may outlive this iteration's scope on
    // the threaded backend only via the runtime — keep them on the heap.
    auto finished = std::make_shared<std::vector<std::atomic<bool>>>(kN);
    auto order_violations = std::make_shared<std::atomic<int>>(0);
    auto data_violations = std::make_shared<std::atomic<int>>(0);
    std::vector<std::atomic<int>> fires(kN);

    RuntimeOptions opts;
    cluster::NodeSpec node;
    node.cpus = 4;
    opts.cluster = cluster::homogeneous(2, node);
    opts.simulate = simulate;
    opts.seed = GetParam();
    Runtime runtime(std::move(opts));
    (void)runtime.drain_completions();  // opt in to completion recording

    Rng rng(GetParam() * 17 + 3);
    std::vector<Future> futures;
    for (int wave = 0; wave < kWaves; ++wave) {
      std::vector<Runtime::BatchItem> items;
      items.reserve(kPerWave);
      for (int i = 0; i < kPerWave; ++i) {
        const int id = wave * kPerWave + i;
        Runtime::BatchItem item;
        item.def.name = "batch";
        item.def.constraint = {.cpus = static_cast<unsigned>(rng.next_int(1, 2))};
        const double seconds = rng.next_uniform(0.5, 4.0);
        item.def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
        // Depend on up to 3 tasks from earlier waves: some already Done by
        // the time this wave is admitted, some still pending — both edges
        // of the batch admission path.
        std::vector<std::size_t> preds;
        if (!futures.empty()) {
          const int k = static_cast<int>(rng.next_int(0, 3));
          for (int j = 0; j < k; ++j) {
            const std::size_t p = rng.next_index(futures.size());
            item.params.push_back({futures[p].data, rt::Direction::In});
            preds.push_back(p);
          }
        }
        item.def.body = [finished, order_violations, data_violations, preds,
                         id](TaskContext& ctx) -> std::any {
          for (std::size_t j = 0; j < preds.size(); ++j) {
            if (!(*finished)[preds[j]].load()) ++*order_violations;
            if (ctx.read<int>(j) != static_cast<int>(preds[j])) ++*data_violations;
          }
          (*finished)[static_cast<std::size_t>(id)].store(true);
          return std::any(id);
        };
        item.on_complete = [&fires](const Future& f, rt::TaskState) {
          ++fires[static_cast<std::size_t>(f.producer)];
        };
        items.push_back(std::move(item));
      }
      const std::vector<Future> wave_futures = runtime.submit_batch(std::move(items));
      futures.insert(futures.end(), wave_futures.begin(), wave_futures.end());
    }

    // Chaos invariant 3: wait_any consumption yields completion order.
    std::vector<rt::TaskId> drained;
    std::vector<Future> remaining = futures;
    std::uint64_t last_seq = 0;
    while (!remaining.empty()) {
      const Future done = runtime.wait_any(remaining);
      const std::uint64_t seq = runtime.graph().task(done.producer).terminal_seq;
      EXPECT_GT(seq, last_seq) << "wait_any returned task " << done.producer << " out of order";
      last_seq = seq;
      remaining.erase(std::find_if(remaining.begin(), remaining.end(), [&](const Future& f) {
        return f.producer == done.producer;
      }));
      if (remaining.size() % 7 == 0) {
        const std::vector<rt::TaskId> chunk = runtime.drain_completions();
        drained.insert(drained.end(), chunk.begin(), chunk.end());
      }
    }
    runtime.barrier();
    const std::vector<rt::TaskId> tail = runtime.drain_completions();
    drained.insert(drained.end(), tail.begin(), tail.end());

    // Chaos invariant 1: one terminal state each, terminal_seq permutation.
    std::set<std::uint64_t> seqs;
    for (int i = 0; i < kN; ++i) {
      const auto& record = runtime.graph().task(rt::TaskId(i));
      EXPECT_EQ(record.state, rt::TaskState::Done) << "task " << i;
      EXPECT_GE(record.terminal_seq, 1u);
      EXPECT_LE(record.terminal_seq, std::uint64_t(kN));
      seqs.insert(record.terminal_seq);
      EXPECT_EQ(runtime.wait_on_as<int>(futures[std::size_t(i)]), i);
    }
    EXPECT_EQ(seqs.size(), std::size_t(kN)) << "terminal_seq stamps collide";

    // Chaos invariant 2: dependency order and committed values held.
    EXPECT_EQ(order_violations->load(), 0);
    EXPECT_EQ(data_violations->load(), 0);

    // Chaos invariant 4: every completion delivered exactly once.
    std::sort(drained.begin(), drained.end());
    ASSERT_EQ(drained.size(), std::size_t(kN)) << "completions lost or duplicated";
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(drained[std::size_t(i)], rt::TaskId(i));
      EXPECT_EQ(fires[std::size_t(i)].load(), 1) << "callback count for task " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDeterminism, ::testing::Range<std::uint64_t>(7000, 7006));

// ---------------------------------------------------------------------
// Invariant 13 (batch/sequential equivalence): on the simulator, a DAG
// submitted through submit_batch produces a bit-identical schedule to the
// same DAG submitted one task at a time — same placements, same cores,
// same virtual start/end instants. Batch admission is an amortization of
// per-task admission, never a semantic change.
// ---------------------------------------------------------------------

class BatchVsSequential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchVsSequential, SimSchedulesAreBitIdentical) {
  using ScheduleRow =
      std::tuple<int, std::uint64_t, int, double, double, std::vector<unsigned>>;
  const auto run = [&](bool batch) {
    RuntimeOptions opts;
    cluster::NodeSpec node;
    node.cpus = 4;
    opts.cluster = cluster::homogeneous(3, node);
    opts.simulate = true;
    opts.seed = GetParam();
    Runtime runtime(std::move(opts));

    Rng rng(GetParam() * 31 + 7);
    std::vector<Future> futures;
    for (int wave = 0; wave < 4; ++wave) {
      std::vector<Runtime::BatchItem> items;
      for (int i = 0; i < 10; ++i) {
        Runtime::BatchItem item;
        item.def.name = "wave";
        item.def.constraint = {.cpus = static_cast<unsigned>(rng.next_int(1, 3))};
        item.def.priority = rng.next_bool(0.15);
        item.def.body = [](TaskContext&) { return std::any(1); };
        const double seconds = rng.next_uniform(1.0, 9.0);
        item.def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
        if (!futures.empty()) {
          const int k = static_cast<int>(rng.next_int(0, 2));
          for (int j = 0; j < k; ++j)
            item.params.push_back(
                {futures[rng.next_index(futures.size())].data, rt::Direction::In});
        }
        items.push_back(std::move(item));
      }
      if (batch) {
        const std::vector<Future> wave_futures = runtime.submit_batch(std::move(items));
        futures.insert(futures.end(), wave_futures.begin(), wave_futures.end());
      } else {
        for (const Runtime::BatchItem& item : items)
          futures.push_back(runtime.submit(item.def, item.params));
      }
    }
    runtime.barrier();

    std::vector<ScheduleRow> schedule;
    for (const auto& e : runtime.trace().events())
      if (e.kind == trace::EventKind::TaskSchedule || e.kind == trace::EventKind::TaskRun)
        schedule.emplace_back(static_cast<int>(e.kind), e.task_id, e.node, e.t_start, e.t_end,
                              e.cores);
    return schedule;
  };
  const std::vector<ScheduleRow> batched = run(true);
  const std::vector<ScheduleRow> sequential = run(false);
  ASSERT_EQ(batched.size(), sequential.size());
  EXPECT_EQ(batched, sequential);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchVsSequential, ::testing::Range<std::uint64_t>(7100, 7106));

}  // namespace
}  // namespace chpo
