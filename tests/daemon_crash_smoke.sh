#!/usr/bin/env bash
# Daemon crash smoke: the write-ahead journal must make `kill -9` at an
# arbitrary instant survivable. Phase 1 SIGKILLs a daemon with studies in
# flight, restarts it on the same state dir, and requires every
# acknowledged study to finish with its full budget counted exactly once
# (per-tenant accounting equals the per-study sums); a client resubmit
# with the same --id must dedup instead of double-charging. Phase 2 uses
# the CHPO_CRASH_AFTER_OP/CHPO_CRASH_TORN hook to die mid-append, leaving
# a torn journal tail the next boot must quarantine without losing the
# ledger. Clients ride through the restarts on --retries/--backoff-ms.
#
# Usage: daemon_crash_smoke.sh [build_dir]
set -euo pipefail

BUILD="${1:-build}"
SERVE="$BUILD/tools/chpo_serve"
CTL="$BUILD/tools/chpo_ctl"
WORK="$(mktemp -d)"
SOCK="$WORK/chpo.sock"
STATE="$WORK/state"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/space.json" <<'EOF'
{
  "learning_rate": [0.01, 0.05, 0.1],
  "num_epochs": [1, 2],
  "batch_size": [16, 32]
}
EOF

start_daemon() {
  "$SERVE" --socket "$SOCK" --state-dir "$STATE" --simulate \
    --train-samples 120 --test-samples 60 --seed 7 >> "$WORK/serve.log" 2>&1 &
  SERVE_PID=$!
}

await_daemon() {
  for _ in $(seq 100); do
    "$CTL" ping --socket "$SOCK" --timeout 2 >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "daemon did not come up"; cat "$WORK/serve.log"; exit 1
}

# value_of <line-grep> <key> <file>: key=value extractor for one output line.
value_of() {
  grep "$1" "$3" | head -1 | tr ' ' '\n' | grep "^$2=" | cut -d= -f2
}

C() { "$CTL" "$@" --socket "$SOCK" --timeout 60; }
# Retrying variant: rides through a daemon restart on backoff.
CR() { "$CTL" "$@" --socket "$SOCK" --timeout 60 --retries 20 --backoff-ms 100; }

# Poll accounting until a tenant's meter reaches the expected value.
await_meter() { # tenant key value
  for _ in $(seq 300); do
    C accounting > "$WORK/acct_poll.out" 2>/dev/null || { sleep 0.2; continue; }
    [ "$(value_of "tenant=$1" "$2" "$WORK/acct_poll.out")" = "$3" ] && return 0
    sleep 0.2
  done
  echo "tenant $1 never reached $2=$3"; C accounting || true; exit 1
}

echo "=== phase 1: kill -9 with studies in flight ==="
start_daemon
await_daemon
C submit "$WORK/space.json" --tenant alice --set algorithm=random --set budget=6 \
  --id alice-crash-1 | tee "$WORK/submit_alice.out" | grep -q 'state='
C submit "$WORK/space.json" --tenant bob --set algorithm=tpe --set budget=8 \
  --id bob-crash-1 | grep -q 'state='

# The studies were acknowledged; nothing that happens now may lose them.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Restart on the same state dir; the client's first attempts land while
# the socket is still down and must back off, not fail.
start_daemon
CR accounting > "$WORK/acct_restart.out"
grep -q 'tenant=alice' "$WORK/acct_restart.out"

# A retry of the acknowledged submit is recognized, not double-charged.
C submit "$WORK/space.json" --tenant alice --set algorithm=random --set budget=6 \
  --id alice-crash-1 | tee "$WORK/resubmit.out" | grep -q 'duplicate=true'

# Both studies run to completion: the budget is counted exactly once
# across the crash (checkpoints replay, close-time reconciliation).
await_meter alice trials_completed 6
await_meter bob trials_completed 8
C accounting > "$WORK/acct1.out"
[ "$(value_of 'tenant=alice' studies_submitted "$WORK/acct1.out")" = "1" ] \
  || { echo "alice double-charged by the resubmit"; cat "$WORK/acct1.out"; exit 1; }
[ "$(value_of 'tenant=alice' studies_finished "$WORK/acct1.out")" = "1" ]
[ "$(value_of 'tenant=bob' studies_finished "$WORK/acct1.out")" = "1" ]

echo "=== accounting reconciles against per-study sums ==="
C list > "$WORK/list1.out"
for tenant in alice bob; do
  reported="$(grep "tenant=$tenant" "$WORK/list1.out" \
    | sed 's/.*trials_done=\([0-9]*\).*/\1/' | awk '{s+=$1} END {print s+0}')"
  accounted="$(value_of "tenant=$tenant" trials_completed "$WORK/acct1.out")"
  if [ "$reported" != "$accounted" ]; then
    echo "tenant $tenant: accounting $accounted != per-study sum $reported"; exit 1
  fi
done
C stats | tee "$WORK/stats1.out" | grep -q 'leaked_completions=0'
grep -q 'lineage_violations=0' "$WORK/stats1.out"
kill -9 "$SERVE_PID"; wait "$SERVE_PID" 2>/dev/null || true; SERVE_PID=""

echo "=== phase 2: crash hook tears the journal mid-append ==="
CHPO_CRASH_AFTER_OP=1 CHPO_CRASH_TORN=1 \
  "$SERVE" --socket "$SOCK" --state-dir "$STATE" --simulate \
  --train-samples 120 --test-samples 60 --seed 7 >> "$WORK/serve.log" 2>&1 &
SERVE_PID=$!
await_daemon
# This submit's journal append is torn in half and the daemon dies before
# acknowledging: the client fails fast, and recovery must drop the tail.
C submit "$WORK/space.json" --tenant carol --set algorithm=random --set budget=4 \
  --id carol-torn-1 --retries 1 > "$WORK/submit_carol.out" 2>&1 && {
    echo "submit should have failed (daemon crashed mid-append)"; exit 1; }
wait "$SERVE_PID" 2>/dev/null && { echo "daemon survived its crash hook"; exit 1; }
SERVE_PID=""

start_daemon
await_daemon
grep -q 'journal tail torn' "$WORK/serve.log" \
  || { echo "torn tail was not detected"; cat "$WORK/serve.log"; exit 1; }
C list > "$WORK/list2.out"
grep -q 'tenant=carol' "$WORK/list2.out" \
  && { echo "unacknowledged torn submit resurrected"; exit 1; }
# The ledger survived both crashes: phase 1's meters are still exact.
C accounting > "$WORK/acct2.out"
[ "$(value_of 'tenant=alice' trials_completed "$WORK/acct2.out")" = "6" ]
[ "$(value_of 'tenant=bob' trials_completed "$WORK/acct2.out")" = "8" ]
C stats | grep -q 'leaked_completions=0'
C shutdown | grep -q 'drained=true'
wait "$SERVE_PID"; SERVE_PID=""

echo "daemon crash smoke OK"
