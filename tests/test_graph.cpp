// Unit tests for the dynamic task graph and its DOT export (Figure 3).
#include <gtest/gtest.h>

#include "runtime/graph.hpp"

namespace chpo::rt {
namespace {

TaskDef named(const std::string& name) {
  TaskDef def;
  def.name = name;
  return def;
}

TEST(TaskGraph, IndependentTasksAreReady) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const DataId cfg = reg.register_data(std::any(1));
  const TaskId a = graph.add_task(named("experiment"), {{cfg, Direction::In}});
  const TaskId b = graph.add_task(named("experiment"), {{cfg, Direction::In}});
  EXPECT_EQ(graph.task(a).state, TaskState::Ready);
  EXPECT_EQ(graph.task(b).state, TaskState::Ready);
  EXPECT_TRUE(graph.task(a).predecessors.empty());
  EXPECT_TRUE(graph.task(b).predecessors.empty());
}

TEST(TaskGraph, ChainThroughFutureDatum) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const TaskId producer = graph.add_task(named("produce"), {});
  const Future f = graph.task(producer).result;
  const TaskId consumer = graph.add_task(named("consume"), {{f.data, Direction::In}});
  EXPECT_EQ(graph.task(consumer).state, TaskState::WaitingDeps);
  ASSERT_EQ(graph.task(consumer).predecessors.size(), 1u);
  EXPECT_EQ(graph.task(consumer).predecessors[0], producer);
  EXPECT_EQ(graph.task(producer).successors[0], consumer);
}

TEST(TaskGraph, ImplicitResultDatumRegistered) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const TaskId t = graph.add_task(named("experiment"), {});
  const Future f = graph.task(t).result;
  EXPECT_EQ(f.producer, t);
  EXPECT_EQ(f.version, 1u);
  EXPECT_EQ(reg.producer(f.data, f.version), t);
}

TEST(TaskGraph, FanInDependencies) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const TaskId a = graph.add_task(named("a"), {});
  const TaskId b = graph.add_task(named("b"), {});
  const TaskId c = graph.add_task(
      named("c"), {{graph.task(a).result.data, Direction::In},
                   {graph.task(b).result.data, Direction::In}});
  EXPECT_EQ(graph.task(c).deps_remaining, 2u);
  EXPECT_EQ(graph.critical_path_length(), 2u);
}

TEST(TaskGraph, InOutSerialisesChain) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const DataId state = reg.register_data(std::any(0));
  const TaskId a = graph.add_task(named("step"), {{state, Direction::InOut}});
  const TaskId b = graph.add_task(named("step"), {{state, Direction::InOut}});
  const TaskId c = graph.add_task(named("step"), {{state, Direction::InOut}});
  EXPECT_EQ(graph.task(b).predecessors, std::vector<TaskId>{a});
  EXPECT_EQ(graph.task(c).predecessors, std::vector<TaskId>{b});
  EXPECT_EQ(graph.critical_path_length(), 3u);
  EXPECT_TRUE(graph.is_acyclic());
}

TEST(TaskGraph, HpoShapeIsEmbarrassinglyParallel) {
  // 27 experiments reading one shared config datum: no cross edges.
  DataRegistry reg;
  TaskGraph graph(reg);
  const DataId dataset = reg.register_data(std::any(1), 1 << 20);
  for (int i = 0; i < 27; ++i) graph.add_task(named("experiment"), {{dataset, Direction::In}});
  EXPECT_EQ(graph.size(), 27u);
  EXPECT_EQ(graph.critical_path_length(), 1u);
  EXPECT_EQ(graph.tasks_in_state(TaskState::Ready).size(), 27u);
}

TEST(TaskGraph, DotExportContainsVersionLabels) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const TaskId producer = graph.add_task(named("experiment"), {});
  const Future f = graph.task(producer).result;
  graph.add_task(named("visualisation"), {{f.data, Direction::In}});
  const std::string dot = graph.to_dot({f});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // Data edge labelled d{datum}v{version}, as in the paper's Figure 3.
  EXPECT_NE(dot.find("d" + std::to_string(f.data) + "v1"), std::string::npos);
  EXPECT_NE(dot.find("sync"), std::string::npos);
}

TEST(TaskGraph, DotMarksPureOrderingEdgesDashed) {
  DataRegistry reg;
  TaskGraph graph(reg);
  const DataId d = reg.register_data();
  graph.add_task(named("w1"), {{d, Direction::Out}});
  graph.add_task(named("w2"), {{d, Direction::Out}});  // WAW, no data flow
  const std::string dot = graph.to_dot();
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(TaskGraph, UnknownTaskThrows) {
  DataRegistry reg;
  TaskGraph graph(reg);
  EXPECT_THROW(graph.task(0), std::out_of_range);
}

}  // namespace
}  // namespace chpo::rt
