// Cost-model tests: calibration against the paper's reported wall-clock
// anchors and the qualitative properties Figure 9 depends on.
#include <gtest/gtest.h>

#include "ml/cost_model.hpp"

namespace chpo::ml {
namespace {

const cluster::NodeSpec kMn4 = cluster::marenostrum4_node();
const cluster::NodeSpec kP9 = cluster::power9_node();

TEST(Amdahl, BasicProperties) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(1, 0.04), 1.0);
  EXPECT_GT(amdahl_speedup(8, 0.04), amdahl_speedup(4, 0.04));
  EXPECT_LT(amdahl_speedup(1000, 0.04), 1.0 / 0.04 + 1e-9);  // bounded by 1/s
  EXPECT_DOUBLE_EQ(amdahl_speedup(16, 0.0), 16.0);            // perfect scaling
  EXPECT_THROW(amdahl_speedup(0, 0.1), std::invalid_argument);
}

TEST(MnistModel, HeaviestGridTaskMatches207Minutes) {
  // Figure 5: the 27-task grid takes ~207 min, dominated by the
  // 100-epoch/batch-32 task on one core.
  const WorkloadModel w = mnist_paper_model();
  const double seconds = cpu_task_seconds(w, 100, 32, 1, kMn4);
  EXPECT_NEAR(seconds / 60.0, 207.0, 10.0);
}

TEST(MnistModel, SingleTaskNear29Minutes) {
  // Figure 4: one task on one core ≈ 29 min (a light-mid config).
  const WorkloadModel w = mnist_paper_model();
  const double seconds = cpu_task_seconds(w, 20, 64, 1, kMn4);
  EXPECT_NEAR(seconds / 60.0, 29.0, 4.0);
}

TEST(CostModel, MoreEpochsCostMore) {
  const WorkloadModel w = mnist_paper_model();
  EXPECT_GT(cpu_task_seconds(w, 100, 64, 1, kMn4), cpu_task_seconds(w, 20, 64, 1, kMn4));
}

TEST(CostModel, SmallerBatchesCostMore) {
  // Per-step overhead dominates at small batch sizes.
  const WorkloadModel w = mnist_paper_model();
  EXPECT_GT(cpu_task_seconds(w, 50, 32, 1, kMn4), cpu_task_seconds(w, 50, 128, 1, kMn4));
}

TEST(CostModel, MoreCoresReduceTimeWithDiminishingReturns) {
  const WorkloadModel w = mnist_paper_model();
  const double t1 = cpu_task_seconds(w, 50, 64, 1, kMn4);
  const double t4 = cpu_task_seconds(w, 50, 64, 4, kMn4);
  const double t48 = cpu_task_seconds(w, 50, 64, 48, kMn4);
  EXPECT_GT(t1, t4);
  EXPECT_GT(t4, t48);
  // Diminishing: 48 cores give far less than 48x.
  EXPECT_GT(t48 * 20, t1);
}

TEST(CostModel, CifarHeavierThanMnistOnCpu) {
  EXPECT_GT(cpu_task_seconds(cifar_paper_model(), 50, 64, 1, kMn4),
            cpu_task_seconds(mnist_paper_model(), 50, 64, 1, kMn4));
}

TEST(GpuModel, OneCoreStarvesTheGpu) {
  // Figure 9's key observation: a V100 fed by one CPU core is preprocess-
  // bound; adding cores removes the bottleneck.
  const WorkloadModel w = cifar_paper_model();
  const double starved = gpu_task_seconds(w, 50, 64, 1, 1, kP9);
  const double fed = gpu_task_seconds(w, 50, 64, 16, 1, kP9);
  EXPECT_GT(starved, 2.0 * fed);
}

TEST(GpuModel, SaturatesOnceGpuBound) {
  // Beyond the crossover, extra cores stop helping: GPU is the bottleneck.
  const WorkloadModel w = cifar_paper_model();
  const double c32 = gpu_task_seconds(w, 50, 64, 32, 1, kP9);
  const double c128 = gpu_task_seconds(w, 50, 64, 128, 1, kP9);
  EXPECT_NEAR(c32, c128, c32 * 0.01);
}

TEST(GpuModel, StarvedGridSlowerThanCpuNodeRun) {
  // "When using a single core, the time taken is even higher than that of
  // the CPU node" — the whole starved 27-task grid on 4 GPUs takes longer
  // than the paper's 207-minute CPU-node MNIST run.
  const WorkloadModel cifar = cifar_paper_model();
  double total = 0.0;
  for (int epochs : {20, 50, 100})
    for (int batch : {32, 64, 128})
      for (const char* opt : {"Adam", "SGD", "RMSprop"})
        total += experiment_seconds(cifar, opt, epochs, batch, 1, 1, kP9);
  const double starved_makespan_lower_bound = total / 4.0;  // 4 GPUs
  EXPECT_GT(starved_makespan_lower_bound, 207.0 * 60.0);
}

TEST(GpuModel, FullGridUnderOneHourWhenFed) {
  // 27 CIFAR tasks on 4 V100s with ample cores: total GPU-bound work / 4
  // must be under an hour (Figure 9 / §6.1).
  const WorkloadModel w = cifar_paper_model();
  double total = 0.0;
  for (int epochs : {20, 50, 100})
    for (int batch : {32, 64, 128})
      for (const char* opt : {"Adam", "SGD", "RMSprop"})
        total += experiment_seconds(w, opt, epochs, batch, 32, 1, kP9);
  EXPECT_LT(total / 4.0, 3900.0);  // ~65 min upper bound
  EXPECT_GT(total / 4.0, 1800.0);  // and not trivially fast
}

TEST(ExperimentSeconds, OptimizerFactorsOrdering) {
  const WorkloadModel w = mnist_paper_model();
  const double sgd = experiment_seconds(w, "SGD", 50, 64, 1, 0, kMn4);
  const double adam = experiment_seconds(w, "Adam", 50, 64, 1, 0, kMn4);
  const double rms = experiment_seconds(w, "RMSprop", 50, 64, 1, 0, kMn4);
  EXPECT_LT(sgd, rms);
  EXPECT_LT(rms, adam);
}

TEST(ExperimentSeconds, GpuPathSelectedWhenGpusGranted) {
  const WorkloadModel w = cifar_paper_model();
  const double gpu = experiment_seconds(w, "SGD", 50, 64, 16, 1, kP9);
  const double cpu = experiment_seconds(w, "SGD", 50, 64, 16, 0, kP9);
  EXPECT_LT(gpu, cpu);
}

TEST(CostModel, InvalidArgumentsThrow) {
  const WorkloadModel w = mnist_paper_model();
  EXPECT_THROW(cpu_task_seconds(w, 0, 32, 1, kMn4), std::invalid_argument);
  EXPECT_THROW(cpu_task_seconds(w, 10, 0, 1, kMn4), std::invalid_argument);
  EXPECT_THROW(cpu_task_seconds(w, 10, 32, 0, kMn4), std::invalid_argument);
  EXPECT_THROW(gpu_task_seconds(w, 10, 32, 1, 0, kP9), std::invalid_argument);
  EXPECT_THROW(gpu_task_seconds(w, 10, 32, 1, 1, kMn4), std::invalid_argument);  // no GPU rate
}

TEST(CostModel, MultiGpuDataParallelSpeedup) {
  const WorkloadModel w = cifar_paper_model();
  const double g1 = gpu_task_seconds(w, 50, 64, 64, 1, kP9);
  const double g4 = gpu_task_seconds(w, 50, 64, 64, 4, kP9);
  EXPECT_GT(g1, g4);
}

}  // namespace
}  // namespace chpo::ml
