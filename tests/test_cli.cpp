// End-to-end tests of the chpo_run CLI binary (the runcompss equivalent).
// The binary path is injected by CMake as CHPO_RUN_BINARY.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string run_command(const std::string& command, int* exit_code) {
  const std::string output_path = "/tmp/chpo_cli_test_output.txt";
  const int rc = std::system((command + " > " + output_path + " 2>&1").c_str());
  *exit_code = rc == -1 ? -1 : WEXITSTATUS(rc);
  std::ifstream in(output_path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(output_path.c_str());
  return ss.str();
}

struct CliFixture : ::testing::Test {
  void SetUp() override {
    space_path = "/tmp/chpo_cli_space.json";
    std::ofstream out(space_path);
    out << R"({"optimizer": ["Adam", "SGD"], "num_epochs": [10], "batch_size": [16]})";
  }
  void TearDown() override { std::remove(space_path.c_str()); }

  std::string binary = CHPO_RUN_BINARY;
  std::string space_path;
};

TEST_F(CliFixture, GridRunPrintsTrialsAndBest) {
  int exit_code = -1;
  const std::string output = run_command(
      binary + " " + space_path + " --epoch-cap 1 --train-samples 60 --test-samples 20",
      &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("trial"), std::string::npos);
  EXPECT_NE(output.find("best:"), std::string::npos);
  EXPECT_NE(output.find("optimizer"), std::string::npos);
}

TEST_F(CliFixture, SimulateReportsVirtualMakespan) {
  int exit_code = -1;
  const std::string output = run_command(
      binary + " " + space_path + " --simulate --machine mn4 --nodes 1", &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("virtual makespan"), std::string::npos);
}

TEST_F(CliFixture, ArtifactsWritten) {
  int exit_code = -1;
  const std::string dot = "/tmp/chpo_cli_graph.dot";
  const std::string trace = "/tmp/chpo_cli_trace";
  const std::string output = run_command(binary + " " + space_path +
                                             " --simulate --graph " + dot + " --trace " + trace,
                                         &exit_code);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_TRUE(std::filesystem::exists(dot));
  EXPECT_TRUE(std::filesystem::exists(trace + ".prv"));
  EXPECT_TRUE(std::filesystem::exists(trace + ".pcf"));
  for (const char* path : {"/tmp/chpo_cli_graph.dot", "/tmp/chpo_cli_trace.prv",
                           "/tmp/chpo_cli_trace.row", "/tmp/chpo_cli_trace.pcf"})
    std::remove(path);
}

TEST_F(CliFixture, CheckpointReplayIsFaster) {
  int exit_code = -1;
  const std::string checkpoint = "/tmp/chpo_cli_checkpoint.json";
  std::remove(checkpoint.c_str());
  const std::string args = " " + space_path +
                           " --epoch-cap 1 --train-samples 60 --test-samples 20 --checkpoint " +
                           checkpoint;
  run_command(binary + args, &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_TRUE(std::filesystem::exists(checkpoint));
  const std::string second = run_command(binary + args, &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(second.find("best:"), std::string::npos);
  std::remove(checkpoint.c_str());
}

TEST_F(CliFixture, UnknownAlgorithmFails) {
  int exit_code = -1;
  const std::string output =
      run_command(binary + " " + space_path + " --algorithm annealing", &exit_code);
  EXPECT_NE(exit_code, 0);
  EXPECT_NE(output.find("unknown --algorithm"), std::string::npos);
}

TEST_F(CliFixture, MissingSpaceFileFails) {
  int exit_code = -1;
  const std::string output = run_command(binary + " /nonexistent/space.json", &exit_code);
  EXPECT_NE(exit_code, 0);
}

TEST_F(CliFixture, HelpPrintsUsage) {
  int exit_code = -1;
  const std::string output = run_command(binary + " --help", &exit_code);
  EXPECT_EQ(exit_code, 0);
  EXPECT_NE(output.find("usage:"), std::string::npos);
  EXPECT_NE(output.find("--algorithm"), std::string::npos);
}

}  // namespace
