// Unit tests for core/GPU slot accounting and affinity enforcement.
#include <gtest/gtest.h>

#include "runtime/resources.hpp"

namespace chpo::rt {
namespace {

TEST(Resources, AllocatesSpecificCores) {
  ResourceState rs(cluster::marenostrum4(1));
  const auto p = rs.try_allocate(0, Constraint{.cpus = 4});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->cpu_count(), 4u);
  EXPECT_EQ(p->cores, (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(rs.free_cpus(0), 44u);
}

TEST(Resources, NeverOversubscribes) {
  ResourceState rs(cluster::marenostrum4(1));
  std::vector<Placement> held;
  for (int i = 0; i < 48; ++i) {
    auto p = rs.try_allocate(0, Constraint{.cpus = 1});
    ASSERT_TRUE(p.has_value());
    held.push_back(*p);
  }
  EXPECT_FALSE(rs.try_allocate(0, Constraint{.cpus = 1}).has_value());
  // All granted cores are distinct.
  std::vector<unsigned> cores;
  for (const auto& p : held) cores.push_back(p.cores[0]);
  std::sort(cores.begin(), cores.end());
  EXPECT_EQ(std::adjacent_find(cores.begin(), cores.end()), cores.end());
}

TEST(Resources, ReleaseMakesSlotsReusable) {
  ResourceState rs(cluster::marenostrum4(1));
  auto p = rs.try_allocate(0, Constraint{.cpus = 48});
  ASSERT_TRUE(p);
  EXPECT_FALSE(rs.try_allocate(0, Constraint{.cpus = 1}));
  rs.release(*p);
  EXPECT_TRUE(rs.try_allocate(0, Constraint{.cpus = 48}));
}

TEST(Resources, DoubleReleaseThrows) {
  ResourceState rs(cluster::marenostrum4(1));
  auto p = rs.try_allocate(0, Constraint{.cpus = 2});
  rs.release(*p);
  EXPECT_THROW(rs.release(*p), std::logic_error);
}

TEST(Resources, GpuAllocation) {
  ResourceState rs(cluster::power9(1));
  const auto p = rs.try_allocate(0, Constraint{.cpus = 10, .gpus = 1});
  ASSERT_TRUE(p);
  EXPECT_EQ(p->gpu_count(), 1u);
  EXPECT_EQ(rs.free_gpus(0), 3u);
  // Only 4 GPUs: a fifth one-GPU task must not fit.
  rs.try_allocate(0, Constraint{.gpus = 1});
  rs.try_allocate(0, Constraint{.gpus = 1});
  rs.try_allocate(0, Constraint{.gpus = 1});
  EXPECT_FALSE(rs.try_allocate(0, Constraint{.gpus = 1}));
}

TEST(Resources, NodeExclusiveTakesAllUsableCores) {
  ResourceState rs(cluster::marenostrum4(2));
  const auto p = rs.try_allocate(1, Constraint{.node_exclusive = true});
  ASSERT_TRUE(p);
  EXPECT_EQ(p->cpu_count(), 48u);
  EXPECT_EQ(rs.free_cpus(1), 0u);
  EXPECT_EQ(rs.free_cpus(0), 48u);
}

TEST(Resources, WorkerSharedCoresOffsetsPhysicalIndices) {
  // Paper Fig 5: worker holds half of a 48-core node; tasks land on the
  // upper 24 physical cores.
  cluster::ClusterSpec spec = cluster::marenostrum4(1);
  spec.worker_placement = cluster::WorkerPlacement::SharedCores;
  spec.worker_cores = 24;
  ResourceState rs(spec);
  const auto p = rs.try_allocate(0, Constraint{.cpus = 1});
  ASSERT_TRUE(p);
  EXPECT_EQ(p->cores[0], 24u);  // first usable physical core
  EXPECT_EQ(rs.free_cpus(0), 23u);
  rs.release(*p);
  EXPECT_EQ(rs.free_cpus(0), 24u);
}

TEST(Resources, DedicatedWorkerNodeUnusable) {
  cluster::ClusterSpec spec = cluster::marenostrum4(3);
  spec.worker_placement = cluster::WorkerPlacement::DedicatedNode;
  ResourceState rs(spec);
  EXPECT_FALSE(rs.try_allocate(0, Constraint{.cpus = 1}));
  EXPECT_TRUE(rs.try_allocate(1, Constraint{.cpus = 1}));
  EXPECT_FALSE(rs.could_fit(0, Constraint{.cpus = 1}));
}

TEST(Resources, FailedNodeRejectsAllocation) {
  ResourceState rs(cluster::marenostrum4(2));
  rs.fail_node(0);
  EXPECT_TRUE(rs.node_down(0));
  EXPECT_FALSE(rs.try_allocate(0, Constraint{.cpus = 1}));
  EXPECT_EQ(rs.free_cpus(0), 0u);
  EXPECT_TRUE(rs.try_allocate(1, Constraint{.cpus = 1}));
}

TEST(Resources, CouldFitIgnoresOccupancy) {
  ResourceState rs(cluster::marenostrum4(1));
  auto p = rs.try_allocate(0, Constraint{.cpus = 48});
  ASSERT_TRUE(p);
  EXPECT_TRUE(rs.could_fit(0, Constraint{.cpus = 48}));   // would fit when free
  EXPECT_FALSE(rs.could_fit(0, Constraint{.cpus = 49}));  // never fits
  EXPECT_FALSE(rs.could_fit(0, Constraint{.cpus = 1, .gpus = 1}));
}

TEST(Resources, FeasibleChecksAnyNode) {
  ResourceState rs(cluster::marenostrum4(2));
  EXPECT_TRUE(rs.feasible(Constraint{.cpus = 48}));
  EXPECT_FALSE(rs.feasible(Constraint{.cpus = 200}));
  EXPECT_FALSE(rs.feasible(Constraint{.gpus = 1}));
}

TEST(Resources, UnknownNodeQueries) {
  ResourceState rs(cluster::marenostrum4(1));
  EXPECT_FALSE(rs.try_allocate(9, Constraint{}));
  EXPECT_FALSE(rs.could_fit(9, Constraint{}));
  // Membership mutations and queries validate the index consistently.
  EXPECT_THROW(rs.fail_node(9), std::out_of_range);
  EXPECT_THROW(rs.mark_node_down(9), std::out_of_range);
  EXPECT_THROW(rs.mark_node_up(9), std::out_of_range);
  EXPECT_THROW(rs.node_down(9), std::out_of_range);
}

TEST(Resources, NodeUpRevivesWithCleanSlate) {
  ResourceState rs(cluster::marenostrum4(2));
  ASSERT_TRUE(rs.try_allocate(0, Constraint{.cpus = 4}));
  rs.mark_node_down(0);
  EXPECT_TRUE(rs.node_down(0));
  EXPECT_EQ(rs.free_cpus(0), 0u);
  rs.mark_node_up(0);
  EXPECT_FALSE(rs.node_down(0));
  // Everything that was running there died with the outage: the node
  // rejoins with all slots free.
  EXPECT_EQ(rs.free_cpus(0), rs.spec().usable_cpus(0));
  EXPECT_TRUE(rs.try_allocate(0, Constraint{.cpus = 1}));
}

TEST(Resources, ZeroCpuGpuOnlyTask) {
  ResourceState rs(cluster::power9(1));
  const auto p = rs.try_allocate(0, Constraint{.cpus = 0, .gpus = 2});
  ASSERT_TRUE(p);
  EXPECT_EQ(p->cpu_count(), 0u);
  EXPECT_EQ(p->gpu_count(), 2u);
}

}  // namespace
}  // namespace chpo::rt
