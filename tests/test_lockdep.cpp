// Lockdep witness tests (support/lockdep.hpp).
//
// The negative tests are death tests: the witness's whole contract is
// "abort with both stacks on the first violation", so a seeded two-thread
// ABBA and a same-thread rank inversion must kill the (forked) child with
// the matching report. The positive test nests the daemon chain's named
// classes in the blessed rank order and asserts the observed order graph
// is cycle-free. With CHPO_LOCKDEP=OFF the hooks compile to nothing, so
// everything here skips except the check that the stubs stay inert.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "support/lockdep.hpp"
#include "support/thread_annotations.hpp"

namespace chpo {
namespace {

// Two anonymous (unranked) locks taken in opposite orders by two threads.
// The spin barrier guarantees both outer locks are held before either
// inner acquisition, so one thread records its order edge and the other
// must see the cycle — before its std::mutex would block, hence an abort,
// never a hang.
void seeded_abba() {
  Mutex a;
  Mutex b;
  std::atomic<int> ready{0};
  std::thread t1([&] {
    MutexLock la(a);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    MutexLock lb(b);
  });
  std::thread t2([&] {
    MutexLock lb(b);
    ready.fetch_add(1);
    while (ready.load() < 2) std::this_thread::yield();
    MutexLock la(a);
  });
  t1.join();
  t2.join();
}

// A single thread acquiring a low-ranked class while holding a
// high-ranked one: no opposite-order observation needed, the declared
// rank table alone convicts it.
void seeded_rank_inversion() {
  Mutex inner(lockdep::kLogSink);       // rank 120, innermost
  Mutex outer(lockdep::kDaemonCmdQueue);  // rank 10, outermost
  MutexLock hold_inner(inner);
  MutexLock then_outer(outer);  // aborts here
}

void seeded_recursive_acquire() {
  Mutex m;
  MutexLock first(m);
  MutexLock again(m);  // self-deadlock; witness aborts instead
}

TEST(LockdepDeath, TwoThreadAbbaAbortsWithBothStacks) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The report must name the cycle and carry both acquisition stacks
  // (the "acquired at:" lines precede each backtrace dump).
  EXPECT_DEATH(seeded_abba(), "LOCK-ORDER CYCLE(.|\n)*acquired at:(.|\n)*being acquired at:");
}

TEST(LockdepDeath, SameThreadRankInversionAborts) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seeded_rank_inversion(),
               "RANK INVERSION(.|\n)*support.log_sink(.|\n)*daemon.cmd_queue");
}

TEST(LockdepDeath, SameInstanceReacquisitionAborts) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(seeded_recursive_acquire(), "RECURSIVE ACQUISITION");
}

TEST(Lockdep, DaemonServerJournalChainIsCycleFree) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  // The blessed acquisition order along the SocketDaemon -> Server ->
  // StateJournal reply path, plus the log sink every layer may enter.
  // (Production code never even holds a queue lock across the journal —
  // the lint rule forbids it — but the rank table must bless the
  // top-to-bottom order so the witness never fires on the real suite.)
  Mutex cmd_queue(lockdep::kDaemonCmdQueue);
  Mutex outbox(lockdep::kDaemonOutbox);
  Mutex journal(lockdep::kDaemonJournal);
  Mutex log_sink(lockdep::kLogSink);
  {
    MutexLock a(cmd_queue);
    MutexLock b(journal);
    MutexLock c(log_sink);
  }
  {
    MutexLock a(outbox);
    MutexLock b(journal);
  }
  {
    MutexLock a(journal);
    MutexLock b(log_sink);
  }
  EXPECT_TRUE(lockdep::order_cycle_free());
  const auto edges = lockdep::observed_edges();
  const auto has_edge = [&](const char* from, const char* to) {
    for (const auto& [f, t] : edges)
      if (f == from && t == to) return true;
    return false;
  };
  EXPECT_TRUE(has_edge("daemon.cmd_queue", "daemon.journal"));
  EXPECT_TRUE(has_edge("daemon.outbox", "daemon.journal"));
  EXPECT_TRUE(has_edge("daemon.journal", "support.log_sink"));
  EXPECT_GE(lockdep::edge_count(), 3u);
}

TEST(Lockdep, SharedMutexAcquisitionsFeedTheOrderGraph) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  // A reader blocked behind a writer deadlocks like any other lock, so
  // shared acquisitions must appear in the graph too.
  SharedMutex registry(lockdep::kDataRegistry);
  Mutex log_sink(lockdep::kLogSink);
  {
    ReaderLock r(registry);
    MutexLock l(log_sink);
  }
  const auto edges = lockdep::observed_edges();
  bool found = false;
  for (const auto& [f, t] : edges)
    if (f == "runtime.data_registry" && t == "support.log_sink") found = true;
  EXPECT_TRUE(found);
  EXPECT_TRUE(lockdep::order_cycle_free());
}

TEST(Lockdep, HeldSetTracksThisThreadOuterFirst) {
  if (!lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=OFF";
  Mutex cmd_queue(lockdep::kDaemonCmdQueue);
  Mutex journal(lockdep::kDaemonJournal);
  {
    MutexLock a(cmd_queue);
    MutexLock b(journal);
    const auto held = lockdep::held_by_this_thread();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_EQ(held[0], "daemon.cmd_queue");
    EXPECT_EQ(held[1], "daemon.journal");
  }
  EXPECT_TRUE(lockdep::held_by_this_thread().empty());
}

TEST(Lockdep, DisabledWitnessIsInert) {
  if (lockdep::enabled()) GTEST_SKIP() << "built with CHPO_LOCKDEP=ON";
  // The no-op stubs must stay free: no registration, no edges, no state.
  Mutex a;
  Mutex b(lockdep::kLogSink);
  MutexLock la(a);
  MutexLock lb(b);
  EXPECT_EQ(lockdep::edge_count(), 0u);
  EXPECT_TRUE(lockdep::order_cycle_free());
  EXPECT_TRUE(lockdep::observed_edges().empty());
  EXPECT_TRUE(lockdep::held_by_this_thread().empty());
}

}  // namespace
}  // namespace chpo
