// Daemon protocol tests: the socket-free Server end-to-end (submit / run /
// accounting reconciliation), protocol edge cases (malformed requests,
// unknown study ids, double-kill, disconnect mid-watch, shutdown with
// queued studies) — each of which must leave the StudyManager consistent
// (zero leaked completions) — plus restart-resume from the shutdown
// manifest and one raw-socket round trip through SocketDaemon.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "daemon/server.hpp"
#include "daemon/socket_daemon.hpp"
#include "jsonlite/wire.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"

namespace chpo {
namespace {

namespace fs = std::filesystem;

daemon::ServerOptions sim_options() {
  daemon::ServerOptions options;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = 4;
  options.manager.runtime.cluster = cluster::homogeneous(2, node);
  options.manager.runtime.simulate = true;
  options.defaults.driver.workload = ml::mnist_paper_model();
  options.defaults.budget = 4;
  return options;
}

json::Value tiny_space() {
  return json::parse(R"({
    "optimizer": ["Adam", "SGD"],
    "num_epochs": [2, 3],
    "batch_size": [16, 32]
  })");
}

json::Value submit_request(const std::string& tenant, const std::string& algorithm,
                           int budget, std::int64_t id = 1) {
  json::Value spec;
  spec.set("space", tiny_space());
  spec.set("algorithm", json::Value(algorithm));
  if (budget > 0) spec.set("budget", json::Value(static_cast<std::int64_t>(budget)));
  json::Value request;
  request.set("op", json::Value("submit"));
  request.set("id", json::Value(id));
  request.set("tenant", json::Value(tenant));
  request.set("spec", spec);
  return request;
}

json::Value op_request(const std::string& op, std::optional<std::int64_t> study = {}) {
  json::Value request;
  request.set("op", json::Value(op));
  request.set("id", json::Value(std::int64_t{1}));
  if (study) request.set("study", json::Value(*study));
  return request;
}

/// The reply (non-event message) in a handle() result, which must be unique.
json::Value reply_of(const std::vector<daemon::Outbound>& out) {
  const json::Value* found = nullptr;
  for (const daemon::Outbound& message : out)
    if (message.message.find("event") == nullptr) {
      EXPECT_EQ(found, nullptr) << "two replies in one batch";
      found = &message.message;
    }
  EXPECT_NE(found, nullptr) << "no reply in batch";
  return found != nullptr ? *found : json::Value();
}

bool reply_ok(const json::Value& reply) {
  const json::Value* ok = reply.find("ok");
  return ok != nullptr && ok->as_bool();
}

/// Drive the server until it goes idle (or drained); collect every event.
std::vector<daemon::Outbound> run_to_idle(daemon::Server& server) {
  std::vector<daemon::Outbound> events;
  while (server.busy()) {
    for (daemon::Outbound& message : server.step(1e6)) events.push_back(std::move(message));
  }
  return events;
}

// ---------------------------------------------------------------------------
// Submit / run / accounting
// ---------------------------------------------------------------------------

TEST(DaemonServer, SubmitRunsToCompletionAndAccountingMatchesPerStudyReports) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 1);
  daemon::Server server(sim_options(), dataset);

  const json::Value alice = reply_of(server.handle(1, submit_request("alice", "grid", 0)));
  const json::Value bob = reply_of(server.handle(2, submit_request("bob", "random", 3)));
  ASSERT_TRUE(reply_ok(alice));
  ASSERT_TRUE(reply_ok(bob));
  EXPECT_EQ(alice.at("name").as_string(), "alice-grid-0");
  EXPECT_NE(alice.at("study").as_int(), bob.at("study").as_int());

  run_to_idle(server);

  const json::Value list = reply_of(server.handle(1, op_request("list")));
  ASSERT_TRUE(reply_ok(list));
  const json::Array& rows = list.at("studies").as_array();
  ASSERT_EQ(rows.size(), 2u);
  std::size_t total_trials = 0;
  for (const json::Value& row : rows) {
    EXPECT_EQ(row.at("state").as_string(), "finished");
    EXPECT_GT(row.at("trials_done").as_int(), 0);
    EXPECT_TRUE(row.contains("best_accuracy"));
    total_trials += static_cast<std::size_t>(row.at("trials_done").as_int());
  }

  // Per-tenant totals must reconcile exactly against the per-study reports.
  const json::Value accounting = reply_of(server.handle(1, op_request("accounting")));
  ASSERT_TRUE(reply_ok(accounting));
  std::size_t accounted = 0;
  for (const json::Value& row : accounting.at("tenants").as_array()) {
    EXPECT_EQ(row.at("studies_finished").as_int(), 1);
    EXPECT_EQ(row.at("studies_active").as_int(), 0);
    EXPECT_GT(row.at("engine_seconds").as_double(), 0.0);
    accounted += static_cast<std::size_t>(row.at("trials_completed").as_int());
  }
  EXPECT_EQ(accounted, total_trials);

  const json::Value stats = reply_of(server.handle(1, op_request("stats")));
  EXPECT_EQ(stats.at("leaked_completions").as_int(), 0);
  EXPECT_EQ(stats.at("lineage_violations").as_int(), 0);
  EXPECT_EQ(stats.at("finished").as_int(), 2);
}

// ---------------------------------------------------------------------------
// Protocol edge cases — each must leave the manager consistent
// ---------------------------------------------------------------------------

TEST(DaemonServer, MalformedRequestsGetErrorsAndLeaveTheManagerConsistent) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 2);
  daemon::Server server(sim_options(), dataset);

  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, json::Value("not an object")))));
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, json::parse(R"({"op": 42})")))));
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, json::parse(R"({"op":"frobnicate"})")))));
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, json::parse(R"({"op":"submit"})")))));

  const json::Value parse_error = reply_of(server.handle_line_error(1, "unterminated string"));
  EXPECT_FALSE(reply_ok(parse_error));
  EXPECT_NE(parse_error.at("error").as_string().find("parse error"), std::string::npos);

  // A submit whose spec fails validation is rejected without a study.
  json::Value bad = submit_request("alice", "grid", 4);
  json::Value bad_spec = bad.at("spec");
  bad_spec.set("mystery_knob", json::Value(7));
  bad.set("spec", bad_spec);
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, bad))));

  // After all that abuse the server still runs studies cleanly.
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("alice", "random", 3)))));
  run_to_idle(server);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  EXPECT_EQ(server.manager().stats().finished, 1u);
}

TEST(DaemonServer, UnknownStudyAndDoubleKillAreErrors) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 3);
  daemon::Server server(sim_options(), dataset);

  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, op_request("status", 99)))));
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, op_request("pause", 99)))));
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, op_request("watch", 99)))));

  const json::Value submitted = reply_of(server.handle(1, submit_request("alice", "random", 4)));
  const std::int64_t id = submitted.at("study").as_int();

  const json::Value killed = reply_of(server.handle(1, op_request("kill", id)));
  ASSERT_TRUE(reply_ok(killed));
  EXPECT_EQ(killed.at("state").as_string(), "killed");

  const json::Value again = reply_of(server.handle(1, op_request("kill", id)));
  EXPECT_FALSE(reply_ok(again));
  EXPECT_NE(again.at("error").as_string().find("killed"), std::string::npos);

  run_to_idle(server);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  EXPECT_EQ(server.ledger().stats("alice").studies_killed, 1u);
  EXPECT_EQ(server.ledger().stats("alice").studies_active, 0u);
}

TEST(DaemonServer, DisconnectMidWatchStopsEventsAndLeaksNothing) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 4);
  daemon::Server server(sim_options(), dataset);

  const json::Value submitted = reply_of(server.handle(1, submit_request("alice", "random", 6)));
  const std::int64_t id = submitted.at("study").as_int();

  constexpr daemon::ClientId kWatcher = 7;
  const auto subscribed = server.handle(kWatcher, op_request("watch", id));
  ASSERT_TRUE(reply_ok(reply_of(subscribed)));
  // The immediate snapshot targets only the new subscriber.
  bool saw_snapshot = false;
  for (const daemon::Outbound& message : subscribed)
    if (message.message.find("event") != nullptr) {
      EXPECT_EQ(message.client, kWatcher);
      saw_snapshot = true;
    }
  EXPECT_TRUE(saw_snapshot);

  // Some progress reaches the watcher, then the connection dies.
  std::vector<daemon::Outbound> early = server.step(1e6);
  server.disconnect(kWatcher);
  const std::vector<daemon::Outbound> late = run_to_idle(server);
  for (const daemon::Outbound& message : late) EXPECT_NE(message.client, kWatcher);

  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  EXPECT_EQ(server.manager().stats().finished, 1u);
  // The study's trials are still accounted even with the watcher gone.
  EXPECT_EQ(server.ledger().stats("alice").trials_completed, 6u);
}

TEST(DaemonServer, WatchStreamsEveryTrialThenTheTerminalState) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 5);
  daemon::Server server(sim_options(), dataset);

  constexpr daemon::ClientId kWatcher = 3;
  ASSERT_TRUE(reply_ok(reply_of(server.handle(kWatcher, op_request("watch")))));  // watch-all
  const json::Value submitted = reply_of(server.handle(1, submit_request("bob", "random", 5)));
  const std::int64_t id = submitted.at("study").as_int();

  std::size_t trial_events = 0;
  std::string last_state;
  for (const daemon::Outbound& message : run_to_idle(server)) {
    ASSERT_EQ(message.client, kWatcher);
    EXPECT_EQ(message.message.at("study").as_int(), id);
    const std::string& kind = message.message.at("event").as_string();
    if (kind == "trial")
      ++trial_events;
    else
      last_state = message.message.at("state").as_string();
  }
  EXPECT_EQ(trial_events, 5u);
  EXPECT_EQ(last_state, "finished");

  // Watch on an already finished study terminates via its snapshot.
  const auto after = server.handle(9, op_request("watch", id));
  ASSERT_TRUE(reply_ok(reply_of(after)));
  bool terminal_snapshot = false;
  for (const daemon::Outbound& message : after)
    if (message.message.find("event") != nullptr)
      terminal_snapshot = message.message.at("state").as_string() == "finished";
  EXPECT_TRUE(terminal_snapshot);
}

TEST(DaemonServer, PauseResumeOverTheProtocol) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 6);
  daemon::Server server(sim_options(), dataset);

  // tpe keeps one suggestion in flight, so pausing actually halts refills.
  json::Value request = submit_request("alice", "tpe", 6);
  const json::Value submitted = reply_of(server.handle(1, request));
  ASSERT_TRUE(reply_ok(submitted));
  const std::int64_t id = submitted.at("study").as_int();

  server.step(1e6);  // at least one trial lands
  const json::Value paused = reply_of(server.handle(1, op_request("pause", id)));
  ASSERT_TRUE(reply_ok(paused));
  EXPECT_EQ(paused.at("state").as_string(), "paused");
  // Pausing a paused study is an error, not a silent no-op.
  EXPECT_FALSE(reply_ok(reply_of(server.handle(1, op_request("pause", id)))));

  // Paused: the in-flight trial drains, then progress stops.
  for (int i = 0; i < 3; ++i) server.step(1e6);
  const json::Value status = reply_of(server.handle(1, op_request("status", id)));
  EXPECT_EQ(status.at("state").as_string(), "paused");
  const std::int64_t at_pause = status.at("trials_done").as_int();
  EXPECT_LT(at_pause, 6);

  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, op_request("resume", id)))));
  run_to_idle(server);
  const json::Value final_status = reply_of(server.handle(1, op_request("status", id)));
  EXPECT_EQ(final_status.at("state").as_string(), "finished");
  EXPECT_EQ(final_status.at("trials_done").as_int(), 6);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
}

TEST(DaemonServer, TenantQuotaRejectsThenAdmitsAfterRaise) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 7);
  daemon::ServerOptions options = sim_options();
  options.default_quota.max_active_studies = 1;
  daemon::Server server(std::move(options), dataset);

  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("alice", "random", 4)))));
  const json::Value rejected = reply_of(server.handle(1, submit_request("alice", "random", 4)));
  EXPECT_FALSE(reply_ok(rejected));
  EXPECT_NE(rejected.at("error").as_string().find("quota"), std::string::npos);
  // An unrelated tenant is not affected by alice's quota.
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("bob", "random", 3)))));

  json::Value raise = op_request("quota");
  raise.set("tenant", json::Value("alice"));
  raise.set("max_active_studies", json::Value(std::int64_t{2}));
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, raise))));
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("alice", "random", 3)))));

  run_to_idle(server);
  EXPECT_EQ(server.ledger().stats("alice").submits_rejected, 1u);
  EXPECT_EQ(server.ledger().stats("alice").studies_finished, 2u);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
}

// ---------------------------------------------------------------------------
// Shutdown drain + restart resume
// ---------------------------------------------------------------------------

TEST(DaemonServer, ShutdownWithQueuedStudiesWritesManifestAndRestartResumes) {
  const fs::path state_dir =
      fs::temp_directory_path() / ("chpo_daemon_test_" + std::to_string(::getpid()));
  fs::remove_all(state_dir);
  fs::create_directories(state_dir);
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 8);

  daemon::ServerOptions options = sim_options();
  options.state_dir = state_dir.string();
  {
    daemon::Server server(std::move(options), dataset);
    ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("alice", "random", 4)))));
    ASSERT_TRUE(reply_ok(reply_of(server.handle(2, submit_request("bob", "tpe", 5)))));
    server.step(1e6);  // some trials land, checkpoints appear

    // Shutdown while work is still queued: the reply arrives from step()
    // only after the drain, and submissions are refused meanwhile.
    EXPECT_TRUE(server.handle(1, op_request("shutdown")).empty());
    EXPECT_TRUE(server.draining());
    EXPECT_FALSE(reply_ok(reply_of(server.handle(2, submit_request("eve", "grid", 0)))));

    bool drained_reply = false;
    while (!server.done()) {
      for (const daemon::Outbound& message : server.step(1e6)) {
        if (message.message.find("drained") != nullptr) {
          EXPECT_EQ(message.client, 1u);
          EXPECT_TRUE(reply_ok(message.message));
          EXPECT_EQ(message.message.at("persisted_studies").as_int(), 2);
          drained_reply = true;
        }
      }
    }
    EXPECT_TRUE(drained_reply);
    EXPECT_EQ(server.manager().leaked_completions(), 0u);
    EXPECT_TRUE(fs::exists(state_dir / "manifest.json"));
  }

  // Restart: the manifest resubmits both studies; their checkpoints replay
  // completed trials, and the tenant ledger reconciles replayed + fresh.
  daemon::ServerOptions resumed_options = sim_options();
  resumed_options.state_dir = state_dir.string();
  daemon::Server resumed(std::move(resumed_options), dataset);

  const json::Value list = reply_of(resumed.handle(1, op_request("list")));
  ASSERT_EQ(list.at("studies").as_array().size(), 2u);
  run_to_idle(resumed);

  const json::Value accounting = reply_of(resumed.handle(1, op_request("accounting")));
  std::size_t reconciled = 0;
  for (const json::Value& row : accounting.at("tenants").as_array()) {
    EXPECT_EQ(row.at("studies_finished").as_int(), 1);
    reconciled += static_cast<std::size_t>(row.at("trials_completed").as_int());
  }
  EXPECT_EQ(reconciled, 9u);  // 4 random + 5 tpe, replayed or fresh
  EXPECT_EQ(resumed.manager().leaked_completions(), 0u);
  for (const rt::StudyId id : resumed.manager().studies())
    EXPECT_EQ(resumed.manager().state(id), service::StudyState::Finished);

  fs::remove_all(state_dir);
}

// ---------------------------------------------------------------------------
// Crash safety: journal replay, idempotent resubmit, exactly-once ledger
// ---------------------------------------------------------------------------

fs::path fresh_state_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("chpo_crash_test_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A submit carrying a client-chosen string id — the idempotency key.
json::Value keyed_submit(const std::string& tenant, const std::string& algorithm, int budget,
                         const std::string& key, bool paused = false) {
  json::Value request = submit_request(tenant, algorithm, budget);
  request.set("id", json::Value(key));
  if (paused) {
    json::Value spec = request.at("spec");
    spec.set("paused", json::Value(true));
    request.set("spec", spec);
  }
  return request;
}

TEST(DaemonServer, IdempotentSubmitDedupesByClientKey) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 14);
  daemon::Server server(sim_options(), dataset);

  const json::Value first = reply_of(server.handle(1, keyed_submit("alice", "random", 3, "r1")));
  ASSERT_TRUE(reply_ok(first));
  EXPECT_FALSE(first.contains("duplicate"));
  const std::int64_t id = first.at("study").as_int();

  // A client retry of the same request (reply lost to a timeout) must get
  // the original study back and charge nothing.
  const json::Value retry = reply_of(server.handle(1, keyed_submit("alice", "random", 3, "r1")));
  ASSERT_TRUE(reply_ok(retry));
  EXPECT_TRUE(retry.at("duplicate").as_bool());
  EXPECT_EQ(retry.at("study").as_int(), id);
  EXPECT_EQ(retry.at("name").as_string(), first.at("name").as_string());
  EXPECT_EQ(server.ledger().stats("alice").studies_submitted, 1u);

  // Keys are scoped per tenant: the same id elsewhere is a new request.
  const json::Value other = reply_of(server.handle(1, keyed_submit("bob", "random", 3, "r1")));
  ASSERT_TRUE(reply_ok(other));
  EXPECT_FALSE(other.contains("duplicate"));

  run_to_idle(server);

  // A retry after the study closed still answers with its fate.
  const json::Value late = reply_of(server.handle(1, keyed_submit("alice", "random", 3, "r1")));
  ASSERT_TRUE(reply_ok(late));
  EXPECT_TRUE(late.at("duplicate").as_bool());
  EXPECT_EQ(late.at("state").as_string(), "finished");
  EXPECT_EQ(server.ledger().stats("alice").studies_submitted, 1u);

  // Integer request ids (the plain protocol) never participate in dedup.
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("carol", "random", 2, 7)))));
  ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("carol", "random", 2, 7)))));
  EXPECT_EQ(server.ledger().stats("carol").studies_submitted, 2u);
}

// The core crash-safety property: destroy the server WITHOUT shutdown
// (process death — nothing is flushed beyond what the journal already made
// durable) after each acknowledged operation in turn, restart on the same
// state dir, and require every acknowledged study back, every closed study
// counted exactly once, and nothing leaked.
TEST(DaemonServer, CrashRecoveryAtEveryInjectionPointIsExactlyOnce) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 10);
  struct TenantExp {
    std::int64_t submitted = 0, finished = 0, killed = 0, trials = 0;
  };

  for (int cut = 1; cut <= 6; ++cut) {
    SCOPED_TRACE("crash after op " + std::to_string(cut));
    const fs::path state_dir = fresh_state_dir("cut" + std::to_string(cut));
    std::map<std::string, TenantExp> exp;
    std::set<std::string> paused_tenants;
    std::int64_t carol_study = -1;
    int live = 0;

    {
      daemon::ServerOptions options = sim_options();
      options.state_dir = state_dir.string();
      daemon::Server server(std::move(options), dataset);
      const std::vector<std::function<void()>> ops = {
          [&] {  // 1: an acknowledged submit must survive any later crash
            ASSERT_TRUE(
                reply_ok(reply_of(server.handle(1, keyed_submit("alice", "random", 4, "a1")))));
            exp["alice"] = {1, 1, 0, 4};
            ++live;
          },
          [&] {  // 2
            ASSERT_TRUE(
                reply_ok(reply_of(server.handle(1, keyed_submit("bob", "tpe", 5, "b1")))));
            exp["bob"] = {1, 1, 0, 5};
            ++live;
          },
          [&] {  // 3: run both to completion — their closes hit the journal
            run_to_idle(server);
            live = 0;
          },
          [&] {  // 4: a paused submit rides into the crash still queued
            const json::Value reply =
                reply_of(server.handle(1, keyed_submit("carol", "random", 4, "c1", true)));
            ASSERT_TRUE(reply_ok(reply));
            carol_study = reply.at("study").as_int();
            exp["carol"] = {1, 1, 0, 4};
            paused_tenants.insert("carol");
            ++live;
          },
          [&] {  // 5: kill before the first trial — counted, zero work
            ASSERT_TRUE(reply_ok(reply_of(server.handle(1, op_request("kill", carol_study)))));
            exp["carol"] = {1, 0, 1, 0};
            paused_tenants.erase("carol");
            --live;
          },
          [&] {  // 6
            ASSERT_TRUE(
                reply_ok(reply_of(server.handle(1, keyed_submit("erin", "random", 2, "e1")))));
            exp["erin"] = {1, 1, 0, 2};
            ++live;
          },
      };
      for (int i = 0; i < cut; ++i) ops[static_cast<std::size_t>(i)]();
      if (testing::Test::HasFatalFailure()) return;
    }  // ~Server without shutdown: the in-process kill -9

    daemon::ServerOptions options = sim_options();
    options.state_dir = state_dir.string();
    daemon::Server server(std::move(options), dataset);

    // Exactly the studies that were live at the crash come back.
    const json::Value list = reply_of(server.handle(1, op_request("list")));
    const json::Array& rows = list.at("studies").as_array();
    EXPECT_EQ(rows.size(), static_cast<std::size_t>(live));
    for (const json::Value& row : rows) {
      if (paused_tenants.count(row.at("tenant").as_string())) {
        ASSERT_TRUE(
            reply_ok(reply_of(server.handle(1, op_request("resume", row.at("study").as_int())))));
      }
    }
    run_to_idle(server);

    for (const auto& [tenant, want] : exp) {
      const service::TenantStats got = server.ledger().stats(tenant);
      EXPECT_EQ(static_cast<std::int64_t>(got.studies_submitted), want.submitted) << tenant;
      EXPECT_EQ(static_cast<std::int64_t>(got.studies_finished), want.finished) << tenant;
      EXPECT_EQ(static_cast<std::int64_t>(got.studies_killed), want.killed) << tenant;
      EXPECT_EQ(static_cast<std::int64_t>(got.trials_completed), want.trials) << tenant;
      EXPECT_EQ(got.studies_active, 0u) << tenant;
    }
    EXPECT_EQ(server.manager().leaked_completions(), 0u);
    EXPECT_EQ(server.manager().lineage_violations(), 0u);

    // The dedup window survived the crash: replaying the very first submit
    // is recognized, and charges nothing.
    const json::Value dup = reply_of(server.handle(1, keyed_submit("alice", "random", 4, "a1")));
    ASSERT_TRUE(reply_ok(dup));
    EXPECT_TRUE(dup.contains("duplicate"));
    EXPECT_EQ(static_cast<std::int64_t>(server.ledger().stats("alice").studies_submitted),
              exp["alice"].submitted);

    fs::remove_all(state_dir);
  }
}

TEST(DaemonServer, TornJournalTailIsDiscardedAndIntactPrefixRecovered) {
  const fs::path state_dir = fresh_state_dir("torn");
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 11);
  {
    daemon::ServerOptions options = sim_options();
    options.state_dir = state_dir.string();
    daemon::Server server(std::move(options), dataset);
    ASSERT_TRUE(reply_ok(reply_of(server.handle(1, keyed_submit("alice", "random", 3, "t1")))));
  }
  // The crash tore the final append mid-record: half a line, no newline.
  // That operation was never acknowledged, so dropping it is correct.
  {
    std::ofstream journal(state_dir / "journal.ndjson", std::ios::binary | std::ios::app);
    journal << "0badc0de {\"rec\":\"submit\",\"tenant\":\"never";
  }
  daemon::ServerOptions options = sim_options();
  options.state_dir = state_dir.string();
  daemon::Server server(std::move(options), dataset);

  const json::Value list = reply_of(server.handle(1, op_request("list")));
  const json::Array& rows = list.at("studies").as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("tenant").as_string(), "alice");
  run_to_idle(server);
  EXPECT_EQ(server.ledger().stats("alice").studies_finished, 1u);
  EXPECT_EQ(server.ledger().stats("alice").trials_completed, 3u);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  fs::remove_all(state_dir);
}

TEST(DaemonServer, CorruptManifestIsQuarantinedAndJournalStillRecovers) {
  const fs::path state_dir = fresh_state_dir("badmanifest");
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 12);
  {
    daemon::ServerOptions options = sim_options();
    options.state_dir = state_dir.string();
    daemon::Server server(std::move(options), dataset);
    ASSERT_TRUE(reply_ok(reply_of(server.handle(1, keyed_submit("alice", "random", 3, "m1")))));
    EXPECT_FALSE(server.recovered_degraded());
  }
  {
    std::ofstream manifest(state_dir / "manifest.json", std::ios::binary | std::ios::trunc);
    manifest << "{\"studies\": [this is not json";
  }
  daemon::ServerOptions options = sim_options();
  options.state_dir = state_dir.string();
  daemon::Server server(std::move(options), dataset);

  // The corrupt file is evidence, not garbage: quarantined, flagged, and
  // everything the journal alone can prove is recovered.
  EXPECT_TRUE(server.recovered_degraded());
  EXPECT_TRUE(fs::exists(state_dir / "manifest.json.bad"));
  EXPECT_TRUE(fs::exists(state_dir / "manifest.json"));  // rewritten healthy
  const json::Value stats = reply_of(server.handle(1, op_request("stats")));
  EXPECT_TRUE(stats.at("recovered_degraded").as_bool());

  const json::Value list = reply_of(server.handle(1, op_request("list")));
  ASSERT_EQ(list.at("studies").as_array().size(), 1u);
  run_to_idle(server);
  EXPECT_EQ(server.ledger().stats("alice").studies_finished, 1u);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  fs::remove_all(state_dir);
}

TEST(DaemonServer, StudyDrainedMidFlightReplaysAndCountsExactlyOnce) {
  const fs::path state_dir = fresh_state_dir("drain");
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 13);
  {
    daemon::ServerOptions options = sim_options();
    options.state_dir = state_dir.string();
    daemon::Server server(std::move(options), dataset);
    ASSERT_TRUE(reply_ok(reply_of(server.handle(1, submit_request("alice", "random", 3)))));
    EXPECT_TRUE(server.handle(1, op_request("shutdown")).empty());
    while (!server.done()) server.step(1e6);
    EXPECT_EQ(server.manager().leaked_completions(), 0u);
  }
  // Restart: the study replays its drained trials from checkpoints and
  // finishes the rest — the meter lands on the budget exactly (a double
  // count or a loss across the restart would miss it).
  daemon::ServerOptions options = sim_options();
  options.state_dir = state_dir.string();
  daemon::Server server(std::move(options), dataset);
  ASSERT_EQ(reply_of(server.handle(1, op_request("list"))).at("studies").as_array().size(), 1u);
  run_to_idle(server);
  const service::TenantStats got = server.ledger().stats("alice");
  EXPECT_EQ(got.studies_submitted, 1u);
  EXPECT_EQ(got.studies_finished, 1u);
  EXPECT_EQ(got.studies_killed, 0u);
  EXPECT_EQ(got.studies_active, 0u);
  EXPECT_EQ(got.trials_completed, 3u);
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  fs::remove_all(state_dir);
}

// ---------------------------------------------------------------------------
// SocketDaemon end-to-end over a real Unix socket
// ---------------------------------------------------------------------------

/// Minimal blocking NDJSON client for the e2e test.
class RawClient {
 public:
  explicit RawClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // The daemon binds asynchronously; retry briefly.
    for (int i = 0; i < 200; ++i) {
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "could not connect to " << path;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const json::Value& request) { send_raw(json::encode_frame(request)); }

  void send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        ADD_FAILURE() << "send failed";
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  /// True when the daemon closes the connection (after draining its bytes).
  bool eof() {
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) return true;
      if (n < 0) return false;
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  json::Value next() {
    while (true) {
      if (std::optional<json::Frame> frame = decoder_.next()) {
        EXPECT_TRUE(frame->ok()) << frame->error;
        return std::move(frame->value);
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        ADD_FAILURE() << "daemon closed the connection early";
        return json::Value();
      }
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  json::LineDecoder decoder_;
};

TEST(SocketDaemon, EndToEndSubmitWatchShutdownOverAUnixSocket) {
  const std::string socket_path =
      (fs::temp_directory_path() / ("chpo_daemon_e2e_" + std::to_string(::getpid()) + ".sock"))
          .string();
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 9);
  daemon::Server server(sim_options(), dataset);
  daemon::SocketDaemon front_end({.socket_path = socket_path, .step_seconds = 1e5}, server);
  std::thread daemon_thread([&] { EXPECT_EQ(front_end.run(), 0); });

  {
    RawClient client(socket_path);
    client.send(op_request("ping"));
    EXPECT_TRUE(reply_ok(client.next()));

    // Subscribe before submitting so no early trial event is missed (the
    // coordinator handles the two requests in order).
    client.send(op_request("watch"));
    client.send(submit_request("alice", "random", 3));
    std::size_t trials = 0;
    while (true) {
      const json::Value message = client.next();
      const json::Value* event = message.find("event");
      if (event == nullptr) continue;  // the watch ack
      if (event->as_string() == "trial") ++trials;
      if (event->as_string() == "state" && message.at("state").as_string() == "finished") break;
    }
    EXPECT_EQ(trials, 3u);

    // A second client shuts the daemon down and gets the drained reply.
    RawClient controller(socket_path);
    controller.send(op_request("shutdown"));
    const json::Value drained = controller.next();
    EXPECT_TRUE(reply_ok(drained));
    EXPECT_TRUE(drained.at("drained").as_bool());
  }

  daemon_thread.join();
  EXPECT_EQ(server.manager().leaked_completions(), 0u);
  EXPECT_FALSE(fs::exists(socket_path));  // unlinked on clean exit
}

TEST(SocketDaemon, OversizedRequestLineFailsOnlyThatConnection) {
  const std::string socket_path =
      (fs::temp_directory_path() / ("chpo_daemon_big_" + std::to_string(::getpid()) + ".sock"))
          .string();
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 15);
  daemon::Server server(sim_options(), dataset);
  daemon::SocketDaemon front_end(
      {.socket_path = socket_path, .step_seconds = 1e5, .max_line_bytes = 256}, server);
  std::thread daemon_thread([&] { EXPECT_EQ(front_end.run(), 0); });

  {
    // One endless line: the daemon must reply with a protocol error and
    // close, never buffering the line past the cap.
    RawClient offender(socket_path);
    offender.send_raw(std::string(4096, 'x') + "\n");
    const json::Value error = offender.next();
    EXPECT_FALSE(reply_ok(error));
    EXPECT_NE(error.at("error").as_string().find("protocol error"), std::string::npos);
    EXPECT_TRUE(offender.eof());

    // Other clients are unaffected; the daemon still serves and drains.
    RawClient controller(socket_path);
    controller.send(op_request("ping"));
    EXPECT_TRUE(reply_ok(controller.next()));
    controller.send(op_request("shutdown"));
    EXPECT_TRUE(reply_ok(controller.next()));
  }
  daemon_thread.join();
}

}  // namespace
}  // namespace chpo
