// End-to-end HPO driver tests on both backends.
#include <gtest/gtest.h>

#include <sstream>

#include "hpo/driver.hpp"
#include "hpo/report.hpp"

namespace chpo::hpo {
namespace {

SearchSpace tiny_space() {
  return SearchSpace::from_json_text(R"({
    "optimizer": ["Adam", "SGD"],
    "num_epochs": [2, 3],
    "batch_size": [16, 32]
  })");
}

rt::RuntimeOptions thread_cluster(unsigned cpus = 4) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "t";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(1, node);
  return opts;
}

TEST(Driver, GridRunsEveryConfigForReal) {
  const ml::Dataset dataset = ml::make_mnist_like(120, 40, 1);
  rt::Runtime runtime(thread_cluster());
  HpoDriver driver(runtime.main_study(), dataset, DriverOptions{.seed = 5});
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  ASSERT_EQ(outcome.trials.size(), 8u);
  for (const Trial& t : outcome.trials) {
    EXPECT_FALSE(t.failed);
    EXPECT_GT(t.result.final_val_accuracy, 0.0);
    EXPECT_FALSE(t.result.history.empty());
  }
  ASSERT_NE(outcome.best(), nullptr);
  EXPECT_GE(outcome.best()->result.final_val_accuracy, outcome.trials[0].result.final_val_accuracy);
}

TEST(Driver, RandomSearchOnSimBackendWithCostModel) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 2);
  rt::RuntimeOptions opts;
  opts.cluster = cluster::marenostrum4(2);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  DriverOptions driver_options;
  driver_options.workload = ml::mnist_paper_model();
  driver_options.epoch_divisor = 1;
  driver_options.trial_constraint = {.cpus = 4};
  HpoDriver driver(runtime.main_study(), dataset, driver_options);
  const SearchSpace space = tiny_space();
  RandomSearch random(space, 6, 3);
  const HpoOutcome outcome = driver.run(random);
  EXPECT_EQ(outcome.trials.size(), 6u);
  // Virtual elapsed time came from the workload model, not wall clock.
  EXPECT_GT(outcome.elapsed_seconds, 100.0);
}

TEST(Driver, EpochControlsApplied) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 3);
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.epoch_divisor = 1;
  options.epoch_cap = 1;  // every trial trains exactly one epoch
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  for (const Trial& t : outcome.trials) EXPECT_EQ(t.result.epochs_run, 1);
}

TEST(Driver, StopOnAccuracyEndsEarly) {
  const ml::Dataset dataset = ml::make_mnist_like(300, 100, 4);
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.stop_on_accuracy = 0.3;  // easy target on easy data
  options.epoch_cap = 3;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  EXPECT_TRUE(outcome.stopped_early);
  EXPECT_LT(outcome.trials.size(), 8u);
}

TEST(Driver, SequentialAlgorithmGetsFeedback) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 5);
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.epoch_cap = 1;
  HpoDriver driver(runtime.main_study(), dataset, options);
  SearchSpace space;
  space.add_float("learning_rate", 1e-4, 1e-1, true);
  GpBayesOpt bo(space, {.max_evals = 6, .n_init = 2, .seed = 6});
  const HpoOutcome outcome = driver.run(bo);
  EXPECT_EQ(outcome.trials.size(), 6u);
  EXPECT_EQ(bo.observations(), 6u);
}

/// Scripted batch algorithm: yields a fixed config list, records tells.
class FixedList : public SearchAlgorithm {
 public:
  explicit FixedList(std::vector<Config> configs) : configs_(std::move(configs)) {}
  std::string name() const override { return "fixed"; }
  std::optional<Config> next() override {
    if (cursor_ >= configs_.size()) return std::nullopt;
    return configs_[cursor_++];
  }
  void tell(const Config&, double score) override { scores_.push_back(score); }
  const std::vector<double>& scores() const { return scores_; }

 private:
  std::vector<Config> configs_;
  std::size_t cursor_ = 0;
  std::vector<double> scores_;
};

TEST(Driver, EarlyStopFiresOnFirstCompletionNotSubmissionIndex) {
  // Two trials on the simulator: the one submitted FIRST takes 60x longer
  // (more epochs under the workload cost model). With a threshold every
  // trial crosses, completion-driven consumption must stop on the short,
  // late-submitted trial — under the old in-order wait_on loop the driver
  // would have blocked on trial 0 for the full 60 epochs first.
  const ml::Dataset dataset = ml::make_mnist_like(120, 40, 21);
  rt::RuntimeOptions opts;
  opts.cluster = cluster::marenostrum4(1);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  DriverOptions options;
  options.workload = ml::mnist_paper_model();
  options.stop_on_accuracy = 1e-9;  // any completed trial crosses
  options.epoch_cap = 1;            // keep the real training inside bodies cheap
  options.trial_constraint = {.cpus = 4};
  HpoDriver driver(runtime.main_study(), dataset, options);

  const Config slow = json::parse(R"({"optimizer":"SGD","num_epochs":60,"batch_size":32})");
  const Config fast = json::parse(R"({"optimizer":"SGD","num_epochs":1,"batch_size":32})");
  FixedList algorithm({slow, fast});
  const HpoOutcome outcome = driver.run(algorithm);

  EXPECT_TRUE(outcome.stopped_early);
  ASSERT_EQ(outcome.trials.size(), 1u);
  EXPECT_EQ(outcome.trials[0].index, 1);  // the late-submitted fast trial won
  EXPECT_EQ(config_int(outcome.trials[0].config, "num_epochs"), 1);

  // The slow trial was cancelled, not drained: after the final barrier it
  // ends Cancelled and the virtual clock never paid for a second trial's
  // consumption in order.
  runtime.barrier();
  std::size_t done = 0, cancelled = 0;
  for (rt::TaskId id = 0; id < runtime.task_count(); ++id) {
    const auto state = runtime.graph().task(id).state;
    if (state == rt::TaskState::Done) ++done;
    if (state == rt::TaskState::Cancelled) ++cancelled;
  }
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(cancelled, 1u);
}

TEST(Driver, SequentialWindowKeepsKTrialsInFlight) {
  // GP-EI with parallel_suggestions=2: two trials run concurrently while
  // the model still observes every result.
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 22);
  rt::RuntimeOptions opts;
  opts.cluster = cluster::marenostrum4(1);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  DriverOptions options;
  options.workload = ml::mnist_paper_model();
  options.epoch_cap = 1;
  options.trial_constraint = {.cpus = 4};
  options.parallel_suggestions = 2;
  HpoDriver driver(runtime.main_study(), dataset, options);
  SearchSpace space;
  space.add_float("learning_rate", 1e-4, 1e-1, true);
  GpBayesOpt bo(space, {.max_evals = 6, .n_init = 2, .seed = 23});
  const HpoOutcome outcome = driver.run(bo);
  EXPECT_EQ(outcome.trials.size(), 6u);
  EXPECT_EQ(bo.observations(), 6u);
  EXPECT_EQ(runtime.analyze().peak_concurrency(), 2u);
}

TEST(Driver, GpuConstraintRunsOnGpuNode) {
  const ml::Dataset dataset = ml::make_mnist_like(40, 10, 7);
  rt::RuntimeOptions opts;
  opts.cluster = cluster::power9(1);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  DriverOptions options;
  options.trial_constraint = {.cpus = 2, .gpus = 1};
  options.workload = ml::cifar_paper_model();
  options.epoch_cap = 1;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  RandomSearch random(space, 8, 8);
  const HpoOutcome outcome = driver.run(random);
  EXPECT_EQ(outcome.trials.size(), 8u);
  // 4 GPUs and 8 one-GPU trials: peak concurrency is exactly 4.
  EXPECT_EQ(runtime.analyze().peak_concurrency(), 4u);
}

TEST(Driver, CrossValidatedTrials) {
  const ml::Dataset dataset = ml::make_mnist_like(90, 0, 11);  // no test split needed
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.epoch_cap = 1;
  options.cv_folds = 3;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space =
      SearchSpace::from_json_text(R"({"optimizer": ["Adam", "SGD"], "batch_size": [16]})");
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  ASSERT_EQ(outcome.trials.size(), 2u);
  for (const Trial& t : outcome.trials) {
    ASSERT_FALSE(t.failed);
    EXPECT_EQ(t.result.history.size(), 3u);  // one entry per fold
    double mean = 0;
    for (const auto& fold : t.result.history) mean += fold.val_accuracy;
    EXPECT_NEAR(t.result.final_val_accuracy, mean / 3.0, 1e-12);
  }
}

TEST(Driver, MakeExperimentTaskHasCostOnlyWithWorkload) {
  const ml::Dataset dataset = ml::make_mnist_like(20, 10, 9);
  const Config config = json::parse(R"({"optimizer":"SGD","num_epochs":4,"batch_size":16})");
  const rt::TaskDef without = make_experiment_task(dataset, config, DriverOptions{}, 0);
  EXPECT_FALSE(static_cast<bool>(without.cost));
  DriverOptions with_model;
  with_model.workload = ml::mnist_paper_model();
  const rt::TaskDef with = make_experiment_task(dataset, config, with_model, 0);
  ASSERT_TRUE(static_cast<bool>(with.cost));
  rt::Placement placement;
  placement.node = 0;
  placement.cores = {0, 1};
  const double cost = with.cost(placement, cluster::marenostrum4_node());
  EXPECT_GT(cost, 0.0);
}

TEST(Report, TablesChartsAndCsv) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 10);
  rt::Runtime runtime(thread_cluster());
  DriverOptions options;
  options.epoch_cap = 2;
  HpoDriver driver(runtime.main_study(), dataset, options);
  const SearchSpace space = tiny_space();
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);

  const std::string table = trials_table(outcome.trials);
  EXPECT_NE(table.find("val_acc"), std::string::npos);
  EXPECT_NE(table.find("optimizer"), std::string::npos);

  const std::string chart = accuracy_chart(outcome.trials, 40, 10);
  EXPECT_NE(chart.find("1.00"), std::string::npos);

  const std::string csv = history_csv(outcome.trials);
  EXPECT_NE(csv.find("trial,epoch"), std::string::npos);
  // 8 trials x 2 epochs + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 17);

  const std::string summary = outcome_summary(outcome);
  EXPECT_NE(summary.find("best:"), std::string::npos);
}

TEST(Report, EmptyAndFailedTrialsHandled) {
  EXPECT_EQ(accuracy_chart({}), "(no histories)\n");
  Trial failed;
  failed.index = 0;
  failed.config = json::parse(R"({"optimizer":"SGD"})");
  failed.failed = true;
  failed.failure_reason = "boom";
  const std::string table = trials_table({failed});
  EXPECT_NE(table.find("FAILED: boom"), std::string::npos);
}

TEST(Report, AttemptStatsAggregatesPerTaskName) {
  using trace::Event;
  using trace::EventKind;
  std::vector<Event> events;
  events.push_back(Event{.kind = EventKind::TaskRun,
                         .task_id = 0,
                         .task_name = "experiment",
                         .t_start = 0.0,
                         .t_end = 10.0});
  events.push_back(Event{.kind = EventKind::TaskFailure, .task_id = 0, .task_name = "experiment"});
  events.push_back(Event{.kind = EventKind::TaskRetry, .task_id = 0, .task_name = "experiment"});
  events.push_back(Event{.kind = EventKind::TaskRun,
                         .task_id = 0,
                         .task_name = "experiment",
                         .t_start = 10.0,
                         .t_end = 14.0});
  events.push_back(
      Event{.kind = EventKind::StragglerDetected, .task_id = 1, .task_name = "experiment"});
  events.push_back(
      Event{.kind = EventKind::SpeculativeLaunch, .task_id = 1, .task_name = "experiment"});
  events.push_back(
      Event{.kind = EventKind::SpeculativeWin, .task_id = 1, .task_name = "experiment"});
  events.push_back(Event{.kind = EventKind::Backoff, .task_id = 2, .task_name = "plot"});
  const std::string stats = attempt_stats(events);
  // Header + one row per distinct task name.
  EXPECT_EQ(std::count(stats.begin(), stats.end(), '\n'), 3);
  const std::string experiment = stats.substr(stats.find("experiment"));
  std::istringstream row(experiment);
  std::string name;
  int runs = 0, fail = 0, retry = 0, strag = 0, spec = 0, won = 0, backoff = 0;
  double busy = 0.0;
  row >> name >> runs >> fail >> retry >> strag >> spec >> won >> backoff >> busy;
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(fail, 1);
  EXPECT_EQ(retry, 1);
  EXPECT_EQ(strag, 1);
  EXPECT_EQ(spec, 1);
  EXPECT_EQ(won, 1);
  EXPECT_EQ(backoff, 0);
  EXPECT_DOUBLE_EQ(busy, 14.0);
  EXPECT_NE(stats.find("plot"), std::string::npos);
}

}  // namespace
}  // namespace chpo::hpo
