// Chaos/stress harness: seeded random DAGs driven on both backends under
// random fault injection, cancels, stragglers and (threaded) hung-attempt
// reaping, asserting the runtime's core invariants:
//
//   1. every task reaches exactly one terminal state, and the terminal_seq
//      stamps form a permutation of 1..N;
//   2. no dependent's body observes a predecessor that has not finished,
//      and every committed value a body reads is the producer's (no torn
//      or stale versions — INOUT chains advance monotonically);
//   3. a wait_any consumption loop yields tasks in completion order
//      (strictly increasing terminal_seq);
//   4. no completion is lost or delivered twice — per-task callbacks fire
//      exactly once and drain_completions reports each task exactly once;
//   5. every datum consumed after a node loss has at least one live
//      location at read time (lineage recovery recommitted it before any
//      consumer ran) — the engine counts violations at dispatch.
//
// The DAG mixes roots, fan-out, fan-in and INOUT chains with varying
// constraints; the scenario mixes forced transient failures, one forced
// permanent failure, probabilistic injection, a couple of cancels, a
// kill/revive outage of node 1 on a no-PFS cluster (so sole-replica
// outputs die with it and lineage recovery must replay producers), and —
// per backend — speculation over a 6x-slow node (sim) or in-flight timeout
// reaping of hung first attempts (threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/trainer.hpp"
#include "reuse/result_cache.hpp"
#include "reuse/stage_key.hpp"
#include "runtime/runtime.hpp"
#include "runtime/study_session.hpp"

namespace chpo::rt {
namespace {

constexpr int kTasks = 32;
constexpr int kChains = 2;

/// Shared between task bodies and the checker; outlives the Runtime.
struct ChaosState {
  ChaosState() : body_finished(kTasks) {
    for (auto& chain : chain_seen) chain = std::vector<std::atomic<bool>>(kTasks);
  }
  std::atomic<int> order_violations{0};  ///< pred body not finished first
  std::atomic<int> data_violations{0};   ///< wrong committed value observed
  std::vector<std::atomic<bool>> body_finished;
  /// chain_seen[c][v]: some attempt of chain c read counter value v.
  std::array<std::vector<std::atomic<bool>>, kChains> chain_seen;
};

struct ChaosPlan {
  struct Spec {
    std::vector<TaskId> preds;  ///< futures read as IN params
    int chain = -1;             ///< >= 0: INOUT link of that chain
    unsigned cpus = 1;
    double cost = 1.0;     ///< sim seconds on a fast node
    bool hang_first = false;  ///< threads: first attempt overruns its timeout
  };
  std::vector<Spec> tasks;
  std::vector<TaskId> cancels;
};

ChaosPlan make_plan(std::uint64_t seed, bool simulate) {
  std::mt19937_64 rng(seed);
  ChaosPlan plan;
  plan.tasks.resize(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    auto& spec = plan.tasks[std::size_t(i)];
    spec.cpus = 1 + unsigned(rng() % 2);
    spec.cost = 5.0 + double(rng() % 11);
    if (i > 0 && rng() % 5 == 0) {
      spec.chain = int(rng() % kChains);
    } else if (i > 0) {
      const std::size_t fan = rng() % std::min<std::size_t>(3, std::size_t(i)) + (rng() % 2);
      std::set<TaskId> preds;
      for (std::size_t k = 0; k < fan; ++k) preds.insert(TaskId(rng() % std::uint64_t(i)));
      spec.preds.assign(preds.begin(), preds.end());
    }
    // Threads only: hung first attempts on a few IN-only tasks (reaping a
    // chain task would leave its abandoned body racing the chain datum).
    if (!simulate && spec.chain < 0 && rng() % 8 == 0) spec.hang_first = true;
  }
  for (int k = 0; k < 2; ++k) plan.cancels.push_back(TaskId(rng() % kTasks));
  return plan;
}

void run_chaos(std::uint64_t seed, bool simulate) {
  const ChaosPlan plan = make_plan(seed, simulate);
  auto state = std::make_shared<ChaosState>();

  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(3, node);
  opts.simulate = simulate;
  opts.seed = seed;
  opts.injector = FaultInjector(seed, 0.04);
  std::mt19937_64 rng(seed * 7919);
  opts.injector.force_task_failures(TaskId(rng() % kTasks), 1);
  opts.injector.force_task_failures(TaskId(rng() % kTasks), 2);
  const TaskId doomed = TaskId(rng() % kTasks);
  opts.injector.force_task_failures(doomed, opts.fault_policy.max_attempts + 2);
  opts.fault_policy.backoff_base_seconds = simulate ? 1.0 : 0.001;
  // Elastic membership under load: node 1 dies mid-run and rejoins later.
  // Without a parallel FS its sole-replica outputs are lost with it, so
  // consumers exercise the lineage-recovery path (invariant 5).
  opts.cluster.has_parallel_fs = false;
  opts.injector.schedule_node_failure(1, simulate ? 10.0 : 0.04);
  opts.injector.schedule_node_recovery(1, simulate ? 25.0 : 0.12);
  if (simulate) {
    opts.speculation.enabled = true;
    opts.speculation.min_observations = 3;
    opts.speculation.straggler_multiplier = 2.0;
  }
  Runtime runtime(std::move(opts));
  (void)runtime.drain_completions();  // opt in to completion recording

  std::vector<DataId> counters;
  for (int c = 0; c < kChains; ++c) counters.push_back(runtime.share<int>(0));
  std::vector<int> chain_of(kTasks, -1);
  std::vector<std::atomic<int>> fires(kTasks);

  std::vector<Future> futures;
  for (int i = 0; i < kTasks; ++i) {
    const auto& spec = plan.tasks[std::size_t(i)];
    chain_of[std::size_t(i)] = spec.chain;
    TaskDef def;
    def.name = "chaos";
    def.constraint = {.cpus = spec.cpus};
    if (simulate) {
      const double cost = spec.cost;
      def.cost = [cost](const Placement& p, const cluster::NodeSpec&) {
        return p.node == 0 ? cost * 6.0 : cost;  // node 0 straggles
      };
    }
    if (spec.hang_first) def.timeout_seconds = 0.05;

    std::vector<Param> params;
    const std::size_t n_preds = spec.preds.size();
    for (const TaskId pred : spec.preds)
      params.push_back({futures[std::size_t(pred)].data, Direction::In});
    if (spec.chain >= 0) params.push_back({counters[std::size_t(spec.chain)], Direction::InOut});

    const std::vector<TaskId> preds = spec.preds;
    const int chain_index = spec.chain;
    const bool hang_first = spec.hang_first;
    def.body = [state, preds, n_preds, chain_index, hang_first, i](TaskContext& ctx) -> std::any {
      for (std::size_t p = 0; p < n_preds; ++p) {
        if (!state->body_finished[std::size_t(preds[p])].load()) ++state->order_violations;
        if (ctx.read<int>(p) != int(preds[p])) ++state->data_violations;
      }
      if (chain_index >= 0) {
        const int c = ctx.read<int>(n_preds);
        if (c < 0 || c >= kTasks)
          ++state->data_violations;
        else
          state->chain_seen[std::size_t(chain_index)][std::size_t(c)].store(true);
        ctx.write(n_preds, c + 1);
      }
      if (!ctx.simulated()) {
        const bool hang = hang_first && ctx.attempt() == 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(hang ? 150 : 1));
      }
      state->body_finished[std::size_t(i)].store(true);
      return std::any(i);
    };
    futures.push_back(runtime.submit(def, params, [&fires](const Future& f, TaskState) {
      ++fires[std::size_t(f.producer)];
    }));
  }

  for (const TaskId victim : plan.cancels) runtime.cancel(futures[std::size_t(victim)]);

  // Invariant 3: consuming everything through wait_any yields strictly
  // increasing terminal_seq (completion order), with occasional drains
  // interleaved to stress the completion queue.
  std::vector<TaskId> drained;
  std::vector<Future> remaining = futures;
  std::uint64_t last_seq = 0;
  while (!remaining.empty()) {
    const Future done = runtime.wait_any(remaining);
    const std::uint64_t seq = runtime.graph().task(done.producer).terminal_seq;
    EXPECT_GT(seq, last_seq) << "wait_any returned task " << done.producer << " out of order";
    last_seq = seq;
    remaining.erase(std::find_if(remaining.begin(), remaining.end(), [&](const Future& f) {
      return f.producer == done.producer;
    }));
    if (remaining.size() % 7 == 0) {
      const std::vector<TaskId> batch = runtime.drain_completions();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
  }
  runtime.barrier();
  const std::vector<TaskId> batch = runtime.drain_completions();
  drained.insert(drained.end(), batch.begin(), batch.end());

  // Invariant 1: one terminal state each; terminal_seq is a permutation.
  std::set<std::uint64_t> seqs;
  std::vector<int> done_per_chain(kChains, 0);
  for (int i = 0; i < kTasks; ++i) {
    const TaskRecord& record = runtime.graph().task(TaskId(i));
    const bool terminal = record.state == TaskState::Done || record.state == TaskState::Failed ||
                          record.state == TaskState::Cancelled;
    EXPECT_TRUE(terminal) << "task " << i << " not terminal";
    EXPECT_GE(record.terminal_seq, 1u);
    EXPECT_LE(record.terminal_seq, std::uint64_t(kTasks));
    seqs.insert(record.terminal_seq);
    if (record.state == TaskState::Done && chain_of[std::size_t(i)] >= 0)
      ++done_per_chain[std::size_t(chain_of[std::size_t(i)])];
  }
  EXPECT_EQ(seqs.size(), std::size_t(kTasks)) << "terminal_seq stamps collide";

  // Invariant 2: bodies never saw an unfinished predecessor or a value
  // other than the producer's committed one. A failed chain link cancels
  // everything behind it, so the Done links of a chain form a prefix and
  // must have observed exactly the counter values 0..D-1 (monotone, no
  // skips, no torn versions).
  EXPECT_EQ(state->order_violations.load(), 0);
  EXPECT_EQ(state->data_violations.load(), 0);
  for (int c = 0; c < kChains; ++c)
    for (int v = 0; v < done_per_chain[std::size_t(c)]; ++v)
      EXPECT_TRUE(state->chain_seen[std::size_t(c)][std::size_t(v)].load())
          << "chain " << c << " never observed counter value " << v;

  // Invariant 5: no task ever consumed a datum with zero live replicas —
  // every lost version was recommitted through lineage before its readers
  // dispatched. The engine checks each dispatch's inputs at placement time.
  EXPECT_EQ(runtime.lineage_violations(), 0u)
      << "a datum was consumed without a live location";
  if (simulate) {
    // The outage lands inside the virtual makespan deterministically.
    int node_down = 0;
    for (const auto& e : runtime.trace().events())
      node_down += e.kind == trace::EventKind::NodeDown;
    EXPECT_GE(node_down, 1);
  }

  // Invariant 4: every task delivered exactly once, via both channels.
  std::sort(drained.begin(), drained.end());
  ASSERT_EQ(drained.size(), std::size_t(kTasks)) << "completions lost or duplicated";
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(drained[std::size_t(i)], TaskId(i));
    EXPECT_EQ(fires[std::size_t(i)].load(), 1) << "callback count for task " << i;
  }
}

class ChaosTest : public testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ChaosTest, InvariantsHoldUnderFaultsCancelsAndStragglers) {
  const auto [seed, simulate] = GetParam();
  run_chaos(std::uint64_t(seed), simulate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         testing::Combine(testing::Values(11, 23, 47, 61),
                                          testing::Bool()),
                         [](const testing::TestParamInfo<ChaosTest::ParamType>& info) {
                           return std::string(std::get<1>(info.param) ? "sim" : "threads") +
                                  "_seed" + std::to_string(std::get<0>(info.param));
                         });

// Work-stealing under multi-study churn: four studies batch-submit waves
// into the sharded ready queues while node 1 dies and rejoins (no-PFS, so
// lineage recovery is live) and speculation is armed. Workers whose shard
// runs dry must steal from loaded shards — the steal counter is asserted
// to move — and stealing must not break per-study completion routing:
// every callback fires exactly once and carries its own study's tag.
// The TSan CI job runs this file, so the steal path gets raced coverage.
TEST(ChaosStealing, FourStudiesChurnAndSpeculationKeepWorkersStealing) {
  constexpr int kStudies = 4;
  constexpr int kPerStudy = 40;

  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(3, node);
  opts.simulate = false;
  opts.seed = 97;
  opts.cluster.has_parallel_fs = false;
  opts.fault_policy.max_attempts = 8;
  opts.fault_policy.backoff_base_seconds = 0.001;
  opts.injector.schedule_node_failure(1, 0.04);
  opts.injector.schedule_node_recovery(1, 0.12);
  opts.speculation.enabled = true;
  opts.speculation.min_observations = 3;
  opts.speculation.straggler_multiplier = 4.0;
  Runtime runtime(std::move(opts));

  std::vector<StudySession> sessions;
  sessions.push_back(runtime.main_study());
  for (int s = 1; s < kStudies; ++s)
    sessions.push_back(runtime.open_study({.name = "steal-" + std::to_string(s)}));

  std::array<std::vector<std::atomic<int>>, kStudies> fires;
  for (auto& per_task : fires) per_task = std::vector<std::atomic<int>>(kPerStudy);

  std::array<std::vector<Future>, kStudies> futures;
  for (int s = 0; s < kStudies; ++s) {
    std::vector<Runtime::BatchItem> wave;
    wave.reserve(kPerStudy);
    for (int i = 0; i < kPerStudy; ++i) {
      Runtime::BatchItem item;
      item.def.name = "steal";
      item.def.constraint = {.cpus = 1};
      item.def.body = [s, i](TaskContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::any(s * kPerStudy + i);
      };
      item.on_complete = [&fires, s](const Future& f, TaskState) {
        ++fires[std::size_t(s)][std::size_t(f.producer) % kPerStudy];
      };
      wave.push_back(std::move(item));
    }
    futures[std::size_t(s)] = sessions[std::size_t(s)].submit_batch(std::move(wave));
  }

  for (StudySession& session : sessions) session.barrier();

  for (int s = 0; s < kStudies; ++s)
    for (int i = 0; i < kPerStudy; ++i) {
      EXPECT_EQ(runtime.wait_on_as<int>(futures[std::size_t(s)][std::size_t(i)]),
                s * kPerStudy + i);
      EXPECT_EQ(fires[std::size_t(s)][std::size_t(i)].load(), 1)
          << "study " << s << " task " << i << " callback count";
    }
  EXPECT_EQ(runtime.lineage_violations(), 0u);
  EXPECT_GT(runtime.worker_steals(), 0u)
      << "no worker ever stole — sharded queues never rebalanced";
}

// Reuse under concurrency: many worker threads race get/put on one shared
// ResultCache (the stage executor's setup when twin stages of different
// chains run in parallel, or speculation duplicates a stage). First-write-
// wins must hold, every reader must observe a fully committed snapshot,
// and TSan must stay green.
TEST(ChaosReuse, ConcurrentStageTasksShareOneCacheSafely) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 77);

  reuse::ReusePolicy policy;
  policy.enabled = true;
  auto cache = std::make_shared<reuse::ResultCache>(policy);

  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "chaos";
  node.cpus = 8;
  opts.cluster = cluster::homogeneous(1, node);
  Runtime runtime(std::move(opts));

  constexpr int kChainCount = 3;
  constexpr int kRacersPerChain = 6;
  std::vector<Future> futures;
  for (int i = 0; i < kChainCount * kRacersPerChain; ++i) {
    const int chain = i % kChainCount;
    TaskDef def;
    def.name = "stage";
    def.body = [&dataset, cache, chain](TaskContext&) -> std::any {
      ml::TrainConfig tc;
      tc.num_epochs = 2;
      tc.batch_size = 16;
      tc.learning_rate = 0.01f + 0.01f * static_cast<float>(chain);
      tc.seed = 101 + static_cast<std::uint64_t>(chain);
      const reuse::StageKey key{static_cast<std::uint64_t>(chain), 0xcafe};
      if (auto hit = cache->get_snapshot(key)) return hit->partial.final_val_accuracy;
      ml::TrainerSession session(dataset, tc);
      while (session.step_epoch()) {
      }
      auto snap = std::make_shared<const ml::TrainSnapshot>(session.snapshot());
      cache->put_snapshot(key, snap);
      return snap->partial.final_val_accuracy;
    };
    futures.push_back(runtime.submit(def, {}));
  }

  // Every racer of a chain must report the same accuracy regardless of
  // whether it computed or hit the cache (stage outputs are deterministic
  // functions of the key).
  std::array<double, kChainCount> expected{};
  std::array<bool, kChainCount> seen{};
  for (int i = 0; i < kChainCount * kRacersPerChain; ++i) {
    const int chain = i % kChainCount;
    const double acc = runtime.wait_on_as<double>(futures[std::size_t(i)]);
    if (!seen[std::size_t(chain)]) {
      expected[std::size_t(chain)] = acc;
      seen[std::size_t(chain)] = true;
    } else {
      EXPECT_EQ(acc, expected[std::size_t(chain)]) << "chain " << chain;
    }
  }

  const reuse::CacheStats stats = cache->stats();
  EXPECT_EQ(stats.puts + stats.duplicate_puts + stats.hits,
            std::size_t(kChainCount * kRacersPerChain));
  EXPECT_EQ(stats.puts, std::size_t(kChainCount));  // one winner per key
}

}  // namespace
}  // namespace chpo::rt
