// Study-session and StudyManager tests: per-study task tagging and
// completion routing, cancellation isolation, engine fair-share/quota/
// pause at the scheduler seam, cooperative multi-study runs with
// different algorithms on both backends, kill mid-rung, pause/resume and
// crash-resume determinism, and two-study isolation under fault
// injection (the chaos face of the multi-study contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "hpo/report.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"
#include "runtime/study_session.hpp"
#include "service/study_manager.hpp"

namespace chpo {
namespace {

rt::RuntimeOptions small_cluster(bool simulate, unsigned cpus = 4, std::size_t nodes = 2) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = simulate;
  return opts;
}

rt::TaskDef noop_task(double sim_cost = 1.0) {
  rt::TaskDef def;
  def.name = "noop";
  def.body = [](rt::TaskContext&) -> std::any { return 0; };
  def.cost = [sim_cost](const rt::Placement&, const cluster::NodeSpec&) { return sim_cost; };
  return def;
}

hpo::SearchSpace tiny_space() {
  return hpo::SearchSpace::from_json_text(R"({
    "optimizer": ["Adam", "SGD"],
    "num_epochs": [2, 3],
    "batch_size": [16, 32]
  })");
}

// ---------------------------------------------------------------------------
// Session-level tagging, routing, isolation
// ---------------------------------------------------------------------------

TEST(StudySession, TasksCarryTheirStudyTagAndCompletionsRoutePerStudy) {
  for (const bool simulate : {false, true}) {
    rt::Runtime runtime(small_cluster(simulate));
    rt::StudySession a = runtime.open_study({.name = "alpha"});
    rt::StudySession b = runtime.open_study({.name = "beta"});
    EXPECT_NE(a.id(), b.id());
    EXPECT_EQ(a.name(), "alpha");

    a.drain_completions();  // opt in before submitting
    b.drain_completions();
    std::vector<rt::Future> a_tasks, b_tasks;
    for (int i = 0; i < 3; ++i) a_tasks.push_back(a.submit(noop_task()));
    for (int i = 0; i < 2; ++i) b_tasks.push_back(b.submit(noop_task()));

    for (const rt::Future& f : a_tasks) EXPECT_EQ(runtime.graph().task(f.producer).study, a.id());
    for (const rt::Future& f : b_tasks) EXPECT_EQ(runtime.graph().task(f.producer).study, b.id());

    a.barrier();
    b.barrier();
    const std::vector<rt::TaskId> a_done = a.drain_completions();
    const std::vector<rt::TaskId> b_done = b.drain_completions();
    EXPECT_EQ(a_done.size(), 3u);
    EXPECT_EQ(b_done.size(), 2u);
    for (const rt::TaskId t : a_done) EXPECT_EQ(runtime.graph().task(t).study, a.id());
    for (const rt::TaskId t : b_done) EXPECT_EQ(runtime.graph().task(t).study, b.id());
  }
}

TEST(StudySession, CancelAllTearsDownExactlyOneStudy) {
  for (const bool simulate : {false, true}) {
    rt::Runtime runtime(small_cluster(simulate, /*cpus=*/1, /*nodes=*/1));
    rt::StudySession a = runtime.open_study({.name = "doomed"});
    rt::StudySession b = runtime.open_study({.name = "survivor"});

    // One slot: most of these stay Ready, so cancel_all has work to do.
    std::vector<rt::Future> a_tasks, b_tasks;
    for (int i = 0; i < 4; ++i) a_tasks.push_back(a.submit(noop_task()));
    for (int i = 0; i < 4; ++i) b_tasks.push_back(b.submit(noop_task()));

    const std::size_t cancelled = a.cancel_all();
    EXPECT_GT(cancelled, 0u);
    b.barrier();
    a.barrier();  // cancelled tasks are terminal too

    for (const rt::Future& f : b_tasks)
      EXPECT_EQ(runtime.graph().task(f.producer).state, rt::TaskState::Done)
          << "neighbour study lost task " << f.producer << " to a foreign cancel";
    std::size_t a_cancelled = 0;
    for (const rt::Future& f : a_tasks)
      if (runtime.graph().task(f.producer).state == rt::TaskState::Cancelled) ++a_cancelled;
    EXPECT_EQ(a_cancelled, cancelled);
    EXPECT_EQ(runtime.lineage_violations(), 0u);
  }
}

TEST(StudySession, PauseHoldsReadyTasksUntilResume) {
  rt::Runtime runtime(small_cluster(/*simulate=*/true));
  rt::StudySession held = runtime.open_study({.name = "held"});
  rt::StudySession flow = runtime.open_study({.name = "flow"});

  held.pause();
  EXPECT_TRUE(held.paused());
  const rt::Future parked = held.submit(noop_task());
  const rt::Future runs = flow.submit(noop_task());
  flow.barrier();

  EXPECT_EQ(runtime.graph().task(runs.producer).state, rt::TaskState::Done);
  EXPECT_EQ(runtime.graph().task(parked.producer).state, rt::TaskState::Ready)
      << "paused study's task was scheduled anyway";

  held.resume();
  held.barrier();
  EXPECT_EQ(runtime.graph().task(parked.producer).state, rt::TaskState::Done);
}

TEST(StudySession, FairShareWeightsSkewScheduling) {
  // One slot, weights 3:1 — the engine's weighted-deficit interleave must
  // grant the heavy study roughly three grants per light-study grant.
  rt::Runtime runtime(small_cluster(/*simulate=*/true, /*cpus=*/1, /*nodes=*/1));
  rt::StudySession heavy = runtime.open_study({.name = "heavy", .weight = 3.0});
  rt::StudySession light = runtime.open_study({.name = "light", .weight = 1.0});
  for (int i = 0; i < 8; ++i) heavy.submit(noop_task());
  for (int i = 0; i < 8; ++i) light.submit(noop_task());
  heavy.barrier();
  light.barrier();

  std::vector<rt::StudyId> schedule_order;
  for (const trace::Event& e : runtime.trace().events())
    if (e.kind == trace::EventKind::TaskSchedule) schedule_order.push_back(e.study);
  ASSERT_EQ(schedule_order.size(), 16u);
  const auto heavy_in_first8 = static_cast<std::size_t>(
      std::count(schedule_order.begin(), schedule_order.begin() + 8, heavy.id()));
  EXPECT_GE(heavy_in_first8, 5u) << "3:1 weights should front-load the heavy study";
}

TEST(StudySession, MaxRunningQuotaCapsConcurrency) {
  // 8 free cores but a quota of 2: TaskRun spans of the study must never
  // overlap more than 2 deep.
  rt::Runtime runtime(small_cluster(/*simulate=*/true, /*cpus=*/8, /*nodes=*/1));
  rt::StudySession capped = runtime.open_study({.name = "capped", .max_running = 2});
  for (int i = 0; i < 6; ++i) capped.submit(noop_task());
  capped.barrier();

  std::vector<std::pair<double, double>> spans;
  for (const trace::Event& e : runtime.trace().events())
    if (e.kind == trace::EventKind::TaskRun && e.study == capped.id())
      spans.emplace_back(e.t_start, e.t_end);
  ASSERT_EQ(spans.size(), 6u);
  for (const auto& [start, _] : spans) {
    int concurrent = 0;
    for (const auto& [s, t] : spans)
      if (s <= start && start < t) ++concurrent;
    EXPECT_LE(concurrent, 2) << "quota of 2 exceeded at t=" << start;
  }
}

// ---------------------------------------------------------------------------
// StudyManager: concurrent studies, lifecycle, determinism
// ---------------------------------------------------------------------------

service::StudySpec point_spec(const std::string& name, const std::string& algorithm,
                              std::size_t budget, std::uint64_t seed) {
  service::StudySpec spec;
  spec.name = name;
  spec.algorithm = algorithm;
  spec.space = tiny_space();
  spec.budget = budget;
  spec.driver.epoch_cap = 1;
  spec.driver.seed = seed;
  return spec;
}

TEST(StudyManager, TwoStudiesWithDifferentAlgorithmsShareOneRuntime) {
  for (const bool simulate : {false, true}) {
    const ml::Dataset dataset = ml::make_mnist_like(80, 20, 1);
    service::ManagerOptions options;
    options.runtime = small_cluster(simulate);
    service::StudyManager manager(std::move(options), dataset);

    service::StudySpec grid = point_spec("grid", "grid", 0, 5);
    if (simulate) grid.driver.workload = ml::mnist_paper_model();
    service::StudySpec random = point_spec("random", "random", 5, 7);
    if (simulate) random.driver.workload = ml::mnist_paper_model();
    const rt::StudyId g = manager.submit(std::move(grid));
    const rt::StudyId r = manager.submit(std::move(random));
    manager.run_all();

    EXPECT_EQ(manager.state(g), service::StudyState::Finished);
    EXPECT_EQ(manager.state(r), service::StudyState::Finished);
    EXPECT_EQ(manager.outcome(g).trials.size(), 8u);  // full grid
    EXPECT_EQ(manager.outcome(r).trials.size(), 5u);
    ASSERT_NE(manager.outcome(g).best(), nullptr);
    ASSERT_NE(manager.outcome(r).best(), nullptr);
    EXPECT_EQ(manager.leaked_completions(), 0u);
    EXPECT_EQ(manager.lineage_violations(), 0u);
  }
}

TEST(StudyManager, KillMidRungCancelsOnlyThatStudy) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 2);
  service::ManagerOptions options;
  options.runtime = small_cluster(/*simulate=*/true, /*cpus=*/4, /*nodes=*/1);
  service::StudyManager manager(std::move(options), dataset);

  service::StudySpec halving = point_spec("halving", "halving", 0, 11);
  halving.driver.workload = ml::mnist_paper_model();
  halving.halving.initial_configs = 6;
  halving.halving.initial_epochs = 1;
  halving.halving.max_epochs = 4;
  service::StudySpec random = point_spec("random", "random", 6, 13);
  random.driver.workload = ml::mnist_paper_model();
  const rt::StudyId h = manager.submit(std::move(halving));
  const rt::StudyId r = manager.submit(std::move(random));

  // Drive a few completions so the halving study is genuinely mid-rung,
  // then kill it while trials are still in flight.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(manager.step());
  ASSERT_EQ(manager.state(h), service::StudyState::Running);
  manager.kill(h);
  EXPECT_EQ(manager.state(h), service::StudyState::Killed);
  manager.run_all();

  EXPECT_EQ(manager.state(r), service::StudyState::Finished);
  EXPECT_EQ(manager.outcome(r).trials.size(), 6u);
  for (const hpo::Trial& t : manager.outcome(r).trials)
    EXPECT_FALSE(t.failed) << "survivor study trial " << t.index << " was damaged by the kill";
  // The killed study kept whatever completed before the kill.
  EXPECT_LT(manager.outcome(h).trials.size(), 18u);
  EXPECT_EQ(manager.leaked_completions(), 0u);
  EXPECT_EQ(manager.lineage_violations(), 0u);
}

struct BestSnapshot {
  double accuracy = -1.0;
  std::string config;
  std::size_t trials = 0;
};

TEST(StudyManager, PauseResumeReproducesBestBitIdentically) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 3);

  const auto run_once = [&](bool with_pause, BestSnapshot& out) {
    service::ManagerOptions options;
    options.runtime = small_cluster(/*simulate=*/false);
    service::StudyManager manager(std::move(options), dataset);
    const rt::StudyId id = manager.submit(point_spec("solo", "random", 6, 17));
    if (with_pause) {
      ASSERT_TRUE(manager.step());
      manager.pause(id);
      // Paused: in-flight completions still drain, no refills happen.
      while (manager.state(id) == service::StudyState::Paused && manager.step()) {
      }
      manager.resume(id);
    }
    manager.run_all();
    ASSERT_EQ(manager.state(id), service::StudyState::Finished);
    const hpo::HpoOutcome& outcome = manager.outcome(id);
    ASSERT_NE(outcome.best(), nullptr);
    out.accuracy = outcome.best()->result.final_val_accuracy;
    out.config = hpo::config_brief(outcome.best()->config);
    out.trials = outcome.trials.size();
  };

  BestSnapshot plain, interrupted;
  run_once(false, plain);
  run_once(true, interrupted);
  EXPECT_EQ(interrupted.trials, plain.trials);
  EXPECT_EQ(interrupted.config, plain.config);
  EXPECT_EQ(interrupted.accuracy, plain.accuracy)
      << "pause/resume changed the search result";
}

TEST(StudyManager, CrashResumeReplaysCheckpointBitIdentically) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 20, 4);
  const std::string checkpoint = testing::TempDir() + "study_resume.json";
  std::remove(checkpoint.c_str());

  // Grid: every config is unique, so config-keyed checkpoint replay is
  // exact. (Random search may draw duplicates, and a duplicate replays the
  // first occurrence's result instead of retraining — by design.)
  service::StudySpec spec = point_spec("resumable", "grid", 0, 19);
  spec.driver.checkpoint_path = checkpoint;

  // Uninterrupted reference run (fresh checkpoint).
  double reference_best = 0.0;
  std::string reference_config;
  {
    service::ManagerOptions options;
    options.runtime = small_cluster(false);
    service::StudyManager manager(std::move(options), dataset);
    const rt::StudyId id = manager.submit(spec);
    manager.run_all();
    const hpo::HpoOutcome& outcome = manager.outcome(id);
    ASSERT_NE(outcome.best(), nullptr);
    reference_best = outcome.best()->result.final_val_accuracy;
    reference_config = hpo::config_brief(outcome.best()->config);
  }
  std::remove(checkpoint.c_str());

  // "Crash": consume a couple of completions, then drop the manager on the
  // floor — only the checkpointed prefix survives.
  {
    service::ManagerOptions options;
    options.runtime = small_cluster(false);
    service::StudyManager manager(std::move(options), dataset);
    manager.submit(spec);
    ASSERT_TRUE(manager.step());
    ASSERT_TRUE(manager.step());
  }

  // Fresh manager, same spec: replays the checkpoint, runs the rest.
  {
    service::ManagerOptions options;
    options.runtime = small_cluster(false);
    service::StudyManager manager(std::move(options), dataset);
    const rt::StudyId id = manager.submit(spec);
    manager.run_all();
    const hpo::HpoOutcome& outcome = manager.outcome(id);
    EXPECT_EQ(outcome.trials.size(), 8u);  // full grid
    const auto replayed =
        std::count_if(outcome.trials.begin(), outcome.trials.end(),
                      [](const hpo::Trial& t) { return t.attempts == 0; });
    EXPECT_GE(replayed, 1) << "nothing was replayed from the checkpoint";
    ASSERT_NE(outcome.best(), nullptr);
    EXPECT_EQ(outcome.best()->result.final_val_accuracy, reference_best);
    EXPECT_EQ(hpo::config_brief(outcome.best()->config), reference_config);
  }
  std::remove(checkpoint.c_str());
}

// ---------------------------------------------------------------------------
// Chaos: two studies under fault injection stay isolated
// ---------------------------------------------------------------------------

TEST(StudyManager, TwoStudyIsolationUnderFaultInjection) {
  for (const bool simulate : {false, true}) {
    const ml::Dataset dataset = ml::make_mnist_like(80, 20, 6);
    service::ManagerOptions options;
    options.runtime = small_cluster(simulate);
    // Probabilistic per-attempt failures; retries must absorb them.
    options.runtime.injector = rt::FaultInjector(99, /*task_failure_prob=*/0.15);
    options.runtime.fault_policy.max_attempts = 6;
    service::StudyManager manager(std::move(options), dataset);

    service::StudySpec a = point_spec("chaos-random", "random", 5, 23);
    service::StudySpec b = point_spec("chaos-grid", "grid", 0, 29);
    if (simulate) {
      a.driver.workload = ml::mnist_paper_model();
      b.driver.workload = ml::mnist_paper_model();
    }
    const rt::StudyId ra = manager.submit(std::move(a));
    const rt::StudyId rb = manager.submit(std::move(b));
    manager.run_all();

    EXPECT_EQ(manager.state(ra), service::StudyState::Finished);
    EXPECT_EQ(manager.state(rb), service::StudyState::Finished);
    EXPECT_EQ(manager.outcome(ra).trials.size(), 5u);
    EXPECT_EQ(manager.outcome(rb).trials.size(), 8u);
    EXPECT_EQ(manager.leaked_completions(), 0u)
        << "a completion crossed studies under fault injection";
    EXPECT_EQ(manager.lineage_violations(), 0u);

    // Retries happened *somewhere* (otherwise the injector was a no-op and
    // this test proves nothing) and every retry stayed inside its study.
    std::size_t retries = 0;
    std::set<rt::StudyId> retry_studies;
    for (const trace::Event& e : manager.trace().events())
      if (e.kind == trace::EventKind::TaskRetry) {
        ++retries;
        retry_studies.insert(e.study);
      }
    EXPECT_GT(retries, 0u);
    for (const rt::StudyId s : retry_studies) EXPECT_TRUE(s == ra || s == rb);
  }
}

}  // namespace
}  // namespace chpo
