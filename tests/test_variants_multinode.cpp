// Tests for @implement task variants and @multinode tasks (paper §3).
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim(std::size_t nodes, unsigned cpus, unsigned gpus = 0) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = cpus;
  node.gpus = gpus;
  node.gpu_rate = gpus ? 30.0 : 0.0;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = true;
  return opts;
}

TaskDef gpu_or_cpu_task() {
  // Primary wants a GPU; the @implement variant falls back to 4 CPU cores.
  TaskDef def;
  def.name = "experiment";
  def.constraint = {.cpus = 1, .gpus = 1};
  def.body = [](TaskContext&) { return std::any(std::string("gpu")); };
  def.cost = [](const Placement&, const cluster::NodeSpec&) { return 10.0; };
  TaskVariant cpu;
  cpu.label = "cpu-fallback";
  cpu.constraint = {.cpus = 4};
  cpu.body = [](TaskContext&) { return std::any(std::string("cpu")); };
  cpu.cost = [](const Placement&, const cluster::NodeSpec&) { return 40.0; };
  def.variants.push_back(std::move(cpu));
  return def;
}

TEST(Variants, PrimaryPreferredWhenItFits) {
  Runtime runtime(sim(1, 8, 1));
  const Future f = runtime.submit(gpu_or_cpu_task());
  EXPECT_EQ(runtime.wait_on_as<std::string>(f), "gpu");
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 10.0);
}

TEST(Variants, FallbackChosenWithoutGpus) {
  Runtime runtime(sim(1, 8, 0));  // no GPU anywhere
  const Future f = runtime.submit(gpu_or_cpu_task());
  EXPECT_EQ(runtime.wait_on_as<std::string>(f), "cpu");
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 40.0);
  // The variant's own constraint decided the affinity set.
  const auto spans = runtime.analyze().spans();
  ASSERT_EQ(spans.size(), 1u);
  const auto usage = runtime.analyze().core_usage();
  EXPECT_EQ(usage.size(), 4u);
}

TEST(Variants, FallbackUsedWhileGpusBusy) {
  // 1 GPU, 8 cores: two tasks -> one runs on the GPU, one on the CPU
  // fallback, concurrently.
  Runtime runtime(sim(1, 8, 1));
  const Future a = runtime.submit(gpu_or_cpu_task());
  const Future b = runtime.submit(gpu_or_cpu_task());
  const std::string ra = runtime.wait_on_as<std::string>(a);
  const std::string rb = runtime.wait_on_as<std::string>(b);
  EXPECT_EQ(ra, "gpu");
  EXPECT_EQ(rb, "cpu");
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 40.0);  // overlapped, not 50
}

TEST(Variants, VariantWithoutBodyReusesPrimary) {
  RuntimeOptions opts = sim(1, 8, 0);
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "shared_body";
  def.constraint = {.cpus = 1, .gpus = 1};  // never fits
  def.body = [](TaskContext& ctx) { return std::any(ctx.thread_budget()); };
  TaskVariant wide;
  wide.constraint = {.cpus = 6};
  def.variants.push_back(std::move(wide));
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<unsigned>(f), 6u);  // ran primary body on variant resources
}

TEST(Variants, InfeasibleEverywhereStillFailsFast) {
  Runtime runtime(sim(1, 2, 0));
  TaskDef def;
  def.name = "impossible";
  def.constraint = {.cpus = 1, .gpus = 2};
  TaskVariant also_impossible;
  also_impossible.constraint = {.cpus = 64};
  def.variants.push_back(std::move(also_impossible));
  def.body = [](TaskContext&) { return std::any(); };
  const Future f = runtime.submit(def);
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
}

TEST(Multinode, SpansRequestedNodeCount) {
  Runtime runtime(sim(4, 8));
  TaskDef def;
  def.name = "mpi_like";
  def.constraint = {.cpus = 4, .nodes = 3};
  def.body = [](TaskContext& ctx) {
    return std::any(ctx.placement().node_count());
  };
  def.cost = [](const Placement&, const cluster::NodeSpec&) { return 30.0; };
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<unsigned>(f), 3u);
  // The trace shows the same interval on three distinct nodes.
  const auto analysis = runtime.analyze();
  EXPECT_EQ(analysis.nodes_used(), 3u);
  EXPECT_DOUBLE_EQ(analysis.makespan(), 30.0);
}

TEST(Multinode, PlacementTotalsAndAffinity) {
  Runtime runtime(sim(3, 8, 2));
  TaskDef def;
  def.name = "mpi_like";
  def.constraint = {.cpus = 2, .gpus = 1, .nodes = 2};
  def.body = [](TaskContext& ctx) {
    const Placement& p = ctx.placement();
    return std::any(std::make_pair(p.total_cpus(), p.total_gpus()));
  };
  const Future f = runtime.submit(def);
  const auto [cpus, gpus] = runtime.wait_on_as<std::pair<unsigned, unsigned>>(f);
  EXPECT_EQ(cpus, 4u);
  EXPECT_EQ(gpus, 2u);
}

TEST(Multinode, QueuesWhenNotEnoughNodesFree) {
  // 2 nodes; a 2-node task and a 1-node task: the multinode task grabs
  // both nodes, the small one waits.
  Runtime runtime(sim(2, 4));
  TaskDef wide;
  wide.name = "wide";
  wide.constraint = {.cpus = 4, .nodes = 2};
  wide.body = [](TaskContext&) { return std::any(); };
  wide.cost = [](const Placement&, const cluster::NodeSpec&) { return 10.0; };
  TaskDef small;
  small.name = "small";
  small.constraint = {.cpus = 1};
  small.body = [](TaskContext&) { return std::any(); };
  small.cost = [](const Placement&, const cluster::NodeSpec&) { return 5.0; };
  runtime.submit(wide);
  runtime.submit(small);
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 15.0);  // strictly serialised
}

TEST(Multinode, SmallTaskFillsGapBeforeWideTask) {
  // Reverse order: small first, wide needs both nodes -> wide waits for
  // the small task's node.
  Runtime runtime(sim(2, 4));
  TaskDef small;
  small.name = "small";
  small.constraint = {.cpus = 4};
  small.body = [](TaskContext&) { return std::any(); };
  small.cost = [](const Placement&, const cluster::NodeSpec&) { return 5.0; };
  TaskDef wide;
  wide.name = "wide";
  wide.constraint = {.cpus = 4, .nodes = 2};
  wide.body = [](TaskContext&) { return std::any(); };
  wide.cost = [](const Placement&, const cluster::NodeSpec&) { return 10.0; };
  runtime.submit(small);
  runtime.submit(wide);
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 15.0);
}

TEST(Multinode, NodeDeathKillsWholeSpanningTask) {
  RuntimeOptions opts = sim(3, 4);
  opts.injector.schedule_node_failure(1, 5.0);
  Runtime runtime(std::move(opts));
  TaskDef wide;
  wide.name = "wide";
  wide.constraint = {.cpus = 4, .nodes = 2};  // lands on nodes 0+1
  wide.body = [](TaskContext&) { return std::any(1); };
  wide.cost = [](const Placement&, const cluster::NodeSpec&) { return 10.0; };
  const Future f = runtime.submit(wide);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);  // re-run succeeds on live nodes
  EXPECT_GE(runtime.analyze().failure_count(), 1u);
}

TEST(Multinode, InfeasibleNodeCountFails) {
  Runtime runtime(sim(2, 4));
  TaskDef wide;
  wide.name = "too_wide";
  wide.constraint = {.cpus = 1, .nodes = 5};
  wide.body = [](TaskContext&) { return std::any(); };
  const Future f = runtime.submit(wide);
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
}

TEST(Multinode, ThreadBackendRunsMultinodeTask) {
  RuntimeOptions opts = sim(3, 2);
  opts.simulate = false;
  Runtime runtime(std::move(opts));
  TaskDef wide;
  wide.name = "wide";
  wide.constraint = {.cpus = 2, .nodes = 3};
  wide.body = [](TaskContext& ctx) { return std::any(ctx.placement().total_cpus()); };
  const Future f = runtime.submit(wide);
  EXPECT_EQ(runtime.wait_on_as<unsigned>(f), 6u);
}

}  // namespace
}  // namespace chpo::rt
