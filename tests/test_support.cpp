// Unit tests for src/support: RNG, strings, formatting, thread pool,
// parallel_for, stopwatch, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "support/format.hpp"
#include "support/log.hpp"
#include "support/parallel_for.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace chpo {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values of a tiny range should appear
}

TEST(Rng, IntSingletonRange) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_int(42, 42), 42);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(15);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child must not replay the parent's sequence.
  Rng parent2(21);
  parent2.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (child.next_u64() == parent2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "--"), "x--y--z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("experiment", "exp"));
  EXPECT_FALSE(starts_with("exp", "experiment"));
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(5.25), "5.2s");
  EXPECT_EQ(format_duration(65), "1m 05s");
  EXPECT_EQ(format_duration(3600 + 23 * 60 + 45), "1h 23m 45s");
  EXPECT_EQ(format_duration(-3), "0.0s");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(format_str("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(Format, PrecisionSpec) { EXPECT_EQ(format_str("{:.3f}", 1.23456), "1.235"); }

TEST(Format, EscapedBraces) { EXPECT_EQ(format_str("{{}} {}", 5), "{} 5"); }

TEST(Format, MissingArgsRenderEmpty) { EXPECT_EQ(format_str("x={} y={}", 1), "x=1 y="); }

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    pool.submit([&] { counter.fetch_add(10); });
    counter.fetch_add(1);
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelFor, CoversWholeRangeOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialWhenBudgetOne) {
  std::vector<int> order;
  parallel_for(10, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.elapsed_ms(), 15.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 15.0);
}

TEST(Log, LevelFilteringRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  log_info("test", "should be dropped {}", 1);  // must not crash
  set_log_level(before);
}

}  // namespace
}  // namespace chpo
