// Tests for the ML extension features: LR schedules, weight decay,
// BatchNorm, and their wiring through TrainConfig.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/dataset.hpp"
#include "ml/layers.hpp"
#include "ml/model.hpp"
#include "ml/metrics.hpp"
#include "ml/schedule.hpp"
#include "ml/trainer.hpp"

namespace chpo::ml {
namespace {

TEST(Schedules, ConstantIsAlwaysOne) {
  ConstantSchedule schedule;
  for (int e = 1; e <= 50; ++e) EXPECT_DOUBLE_EQ(schedule.multiplier(e, 50), 1.0);
}

TEST(Schedules, StepDecayHalvesEveryPeriod) {
  StepDecaySchedule schedule(10, 0.5);
  EXPECT_DOUBLE_EQ(schedule.multiplier(1, 100), 1.0);
  EXPECT_DOUBLE_EQ(schedule.multiplier(10, 100), 1.0);
  EXPECT_DOUBLE_EQ(schedule.multiplier(11, 100), 0.5);
  EXPECT_DOUBLE_EQ(schedule.multiplier(21, 100), 0.25);
}

TEST(Schedules, CosineStartsHighEndsAtFloor) {
  CosineSchedule schedule(0.01);
  EXPECT_DOUBLE_EQ(schedule.multiplier(1, 100), 1.0);
  EXPECT_NEAR(schedule.multiplier(100, 100), 0.01, 1e-9);
  // Monotone decreasing.
  double prev = 2.0;
  for (int e = 1; e <= 100; ++e) {
    const double m = schedule.multiplier(e, 100);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(Schedules, SingleEpochDegenerate) {
  CosineSchedule schedule(0.1);
  EXPECT_DOUBLE_EQ(schedule.multiplier(1, 1), 1.0);
}

TEST(Schedules, FactoryAndValidation) {
  EXPECT_EQ(make_schedule("constant")->name(), "constant");
  EXPECT_EQ(make_schedule("step")->name(), "step");
  EXPECT_EQ(make_schedule("cosine")->name(), "cosine");
  EXPECT_THROW(make_schedule("linear"), std::invalid_argument);
  EXPECT_THROW(StepDecaySchedule(0, 0.5), std::invalid_argument);
  EXPECT_THROW(StepDecaySchedule(5, 0.0), std::invalid_argument);
  EXPECT_THROW(CosineSchedule(1.5), std::invalid_argument);
}

TEST(Optimizer, LrScaleShrinksStep) {
  Sgd sgd(0.1f, 0.0f);
  Tensor p({1}, 1.0f), g({1}, 1.0f);
  sgd.set_lr_scale(0.5f);
  sgd.step({&p}, {&g});
  EXPECT_NEAR(p[0], 1.0f - 0.05f, 1e-6);
}

TEST(WeightDecay, ShrinksWeightsTowardsZero) {
  const Dataset ds = make_mnist_like(100, 30, 1);
  TrainConfig plain;
  plain.num_epochs = 3;
  plain.optimizer = "SGD";
  TrainConfig decayed = plain;
  decayed.weight_decay = 0.1f;

  Rng rng_a(9), rng_b(9);
  Model a = make_mlp(ds.sample_features(), {16}, ds.classes, rng_a);
  Model b = make_mlp(ds.sample_features(), {16}, ds.classes, rng_b);
  train(a, ds, plain);
  train(b, ds, decayed);
  double norm_plain = 0, norm_decayed = 0;
  for (Tensor* t : a.params())
    for (std::size_t i = 0; i < t->size(); ++i) norm_plain += (*t)[i] * (*t)[i];
  for (Tensor* t : b.params())
    for (std::size_t i = 0; i < t->size(); ++i) norm_decayed += (*t)[i] * (*t)[i];
  EXPECT_LT(norm_decayed, norm_plain);
}

TEST(BatchNorm, TrainingOutputIsNormalised) {
  BatchNorm bn(4);
  Rng rng(2);
  Tensor x = Tensor::randn({64, 4}, rng, 3.0f);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += 10.0f;  // shifted input
  const Tensor y = bn.forward(x, /*training=*/true, 1);
  for (std::size_t f = 0; f < 4; ++f) {
    double mean = 0, var = 0;
    for (std::size_t r = 0; r < 64; ++r) mean += y.at2(r, f);
    mean /= 64;
    for (std::size_t r = 0; r < 64; ++r) var += std::pow(y.at2(r, f) - mean, 2.0);
    var /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm bn(2, /*momentum=*/0.5f);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    Tensor x({32, 2});
    for (std::size_t j = 0; j < x.size(); ++j)
      x[j] = static_cast<float>(rng.next_gaussian(5.0, 2.0));
    bn.forward(x, true, 1);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.5f);
  // Batch variance with n=32 has ~25% relative noise; allow a wide band.
  EXPECT_NEAR(bn.running_var()[0], 4.0f, 1.8f);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm bn(2);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    Tensor x = Tensor::randn({16, 2}, rng);
    bn.forward(x, true, 1);
  }
  // A single eval sample doesn't get normalised to zero — running stats apply.
  Tensor probe({1, 2}, 3.0f);
  const Tensor out1 = bn.forward(probe, false, 1);
  const Tensor out2 = bn.forward(probe, false, 1);
  EXPECT_FLOAT_EQ(out1[0], out2[0]);  // eval is deterministic, no state change
}

TEST(BatchNorm, GradientNumericCheck) {
  BatchNorm bn(3);
  Rng rng(5);
  const Tensor x = Tensor::randn({8, 3}, rng);
  const Tensor weights = Tensor::randn({8, 3}, rng);
  Tensor y = bn.forward(x, true, 1);
  Tensor dy(y.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) dy[i] = weights[i];
  const Tensor dx = bn.backward(dy, 1);

  const auto loss_at = [&](const Tensor& input) {
    Tensor out = bn.forward(input, true, 1);
    double loss = 0;
    for (std::size_t i = 0; i < out.size(); ++i) loss += out[i] * weights[i];
    return loss;
  };
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < 12; ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(dx[i], (loss_at(xp) - loss_at(xm)) / (2 * eps), 3e-2) << "at " << i;
  }
}

TEST(BatchNorm, BackwardWithoutForwardThrows) {
  BatchNorm bn(2);
  Tensor dy({4, 2}, 1.0f);
  EXPECT_THROW(bn.backward(dy, 1), std::logic_error);
}

TEST(BatchNorm, ShapeMismatchThrows) {
  BatchNorm bn(4);
  Tensor x({2, 5});
  EXPECT_THROW(bn.forward(x, true, 1), std::invalid_argument);
  EXPECT_THROW(BatchNorm(0), std::invalid_argument);
}

TEST(TrainConfig, BatchNormMlpTrains) {
  const Dataset ds = make_mnist_like(300, 100, 6);
  TrainConfig config;
  config.num_epochs = 4;
  config.batch_norm = true;
  const TrainResult result = run_experiment(ds, config);
  EXPECT_GT(result.final_val_accuracy, 0.5);
}

TEST(TrainConfig, CosineScheduleStillLearns) {
  const Dataset ds = make_mnist_like(200, 60, 7);
  TrainConfig config;
  config.num_epochs = 5;
  config.lr_schedule = "cosine";
  const TrainResult result = run_experiment(ds, config);
  EXPECT_GT(result.final_val_accuracy, 0.4);
}

TEST(TrainConfig, UnknownScheduleThrows) {
  const Dataset ds = make_mnist_like(50, 10, 8);
  TrainConfig config;
  config.lr_schedule = "warmup";
  EXPECT_THROW(run_experiment(ds, config), std::invalid_argument);
}

// ------------------------------------------------------- cross-validation

TEST(CrossValidation, RunsAllFoldsAndAggregates) {
  const Dataset ds = make_mnist_like(120, 0, 20);
  TrainConfig config;
  config.num_epochs = 2;
  const CvResult result = cross_validate(ds, config, 4);
  ASSERT_EQ(result.fold_accuracies.size(), 4u);
  double sum = 0;
  for (double a : result.fold_accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    sum += a;
  }
  EXPECT_NEAR(result.mean_accuracy, sum / 4.0, 1e-12);
  EXPECT_GE(result.stddev, 0.0);
}

TEST(CrossValidation, LearnsAboveChance) {
  const Dataset ds = make_mnist_like(300, 0, 21);
  TrainConfig config;
  config.num_epochs = 4;
  const CvResult result = cross_validate(ds, config, 3);
  EXPECT_GT(result.mean_accuracy, 0.4);  // chance = 0.1
}

TEST(CrossValidation, InvalidFoldCountsThrow) {
  const Dataset ds = make_mnist_like(20, 0, 22);
  TrainConfig config;
  EXPECT_THROW(cross_validate(ds, config, 1), std::invalid_argument);
  EXPECT_THROW(cross_validate(ds, config, 21), std::invalid_argument);
}

TEST(CrossValidation, FoldSizesPartitionTheData) {
  // 10 samples, 3 folds: held-out sizes 3/3/4 (contiguous split), and the
  // accuracies come from models that never saw their held-out fold. We
  // can't observe sizes directly, but a degenerate 2-fold case on a
  // 2-sample set must produce exactly 2 folds of 1 sample each.
  SyntheticSpec spec;
  spec.n_train = 2;
  spec.n_test = 0;
  spec.classes = 2;
  spec.height = 4;
  spec.width = 4;
  spec.seed = 23;
  const Dataset tiny = make_synthetic(spec);
  TrainConfig config;
  config.num_epochs = 1;
  config.batch_size = 1;
  const CvResult result = cross_validate(tiny, config, 2);
  ASSERT_EQ(result.fold_accuracies.size(), 2u);
  for (double a : result.fold_accuracies) EXPECT_TRUE(a == 0.0 || a == 1.0);  // 1 sample
}

// --------------------------------------------------------------- metrics

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix m(3);
  m.add_all({0, 0, 1, 1, 2, 2}, {0, 1, 1, 1, 2, 0});
  EXPECT_EQ(m.total(), 6u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_EQ(m.count(1, 1), 2u);
  EXPECT_NEAR(m.accuracy(), 4.0 / 6.0, 1e-12);
}

TEST(ConfusionMatrix, PerClassMetrics) {
  ConfusionMatrix m(2);
  // class 0: 3 true, 2 predicted correctly; one 0 predicted as 1.
  // class 1: 2 true, 1 predicted correctly; one 1 predicted as 0.
  m.add_all({0, 0, 0, 1, 1}, {0, 0, 1, 1, 0});
  const ClassMetrics c0 = m.class_metrics(0);
  EXPECT_EQ(c0.support, 3u);
  EXPECT_NEAR(c0.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c0.precision, 2.0 / 3.0, 1e-12);
  const ClassMetrics c1 = m.class_metrics(1);
  EXPECT_NEAR(c1.recall, 0.5, 1e-12);
  EXPECT_NEAR(c1.precision, 0.5, 1e-12);
  EXPECT_GT(m.macro_f1(), 0.5);
  EXPECT_LT(m.macro_f1(), 0.7);
}

TEST(ConfusionMatrix, PerfectPrediction) {
  ConfusionMatrix m(4);
  m.add_all({0, 1, 2, 3}, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, EmptyAndInvalid) {
  ConfusionMatrix m(2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_THROW(m.add(2, 0), std::out_of_range);
  EXPECT_THROW(m.add(0, -1), std::out_of_range);
  EXPECT_THROW(m.add_all({0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  EXPECT_THROW(m.class_metrics(5), std::out_of_range);
}

TEST(ConfusionMatrix, AbsentClassHasZeroMetrics) {
  ConfusionMatrix m(3);
  m.add_all({0, 0}, {0, 0});
  const ClassMetrics c2 = m.class_metrics(2);
  EXPECT_EQ(c2.support, 0u);
  EXPECT_DOUBLE_EQ(c2.f1, 0.0);
}

TEST(ConfusionMatrix, RenderContainsSummary) {
  ConfusionMatrix m(2);
  m.add_all({0, 1}, {0, 1});
  const std::string text = m.to_string();
  EXPECT_NE(text.find("accuracy 1.000"), std::string::npos);
  EXPECT_NE(text.find("macro-F1"), std::string::npos);
}

TEST(ConfusionMatrix, EvaluateConfusionMatchesEvaluate) {
  const Dataset ds = make_mnist_like(200, 80, 30);
  TrainConfig config;
  config.num_epochs = 3;
  Rng rng(31);
  Model model = make_mlp(ds.sample_features(), {32}, ds.classes, rng);
  train(model, ds, config);
  ConfusionMatrix matrix = evaluate_confusion(model, ds.test_x, ds.test_y, ds.classes);
  EXPECT_EQ(matrix.total(), ds.test_size());
  EXPECT_NEAR(matrix.accuracy(), evaluate(model, ds.test_x, ds.test_y), 1e-12);
}

}  // namespace
}  // namespace chpo::ml
