// Full-pipeline integration tests: the paper's workflow end-to-end, at the
// exact cluster scales of the evaluation section (via the DES backend).
#include <gtest/gtest.h>

#include <fstream>

#include "hpo/driver.hpp"
#include "hpo/report.hpp"
#include "trace/gantt.hpp"
#include "trace/prv_writer.hpp"

namespace chpo {
namespace {

const ml::Dataset kEmptyDataset{};

constexpr const char* kListing1 = R"({
  "optimizer": ["Adam", "SGD", "RMSprop"],
  "num_epochs": [20, 50, 100],
  "batch_size": [32, 64, 128]
})";

// The Figure 5 setup: one MareNostrum4 node, worker holds 24 of 48 cores,
// 27 MNIST grid tasks at one core each.
TEST(PaperPipeline, Figure5SingleNodeGrid) {
  rt::RuntimeOptions opts;
  opts.cluster = cluster::marenostrum4(1);
  opts.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
  opts.cluster.worker_cores = 24;
  opts.simulate = true;
  opts.sim.execute_bodies = false;  // scheduling study only
  rt::Runtime runtime(std::move(opts));

  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(kListing1);
  const ml::WorkloadModel workload = ml::mnist_paper_model();
  for (const auto& config : space.enumerate_grid()) {
    hpo::DriverOptions driver_options;
    driver_options.workload = workload;
    driver_options.trial_constraint = {.cpus = 1};
    runtime.submit(hpo::make_experiment_task(kEmptyDataset, config, driver_options, 0));
  }
  runtime.barrier();

  const auto analysis = runtime.analyze();
  EXPECT_EQ(analysis.task_count(), 27u);
  // "24 tasks were started at the same time" (§6.1).
  EXPECT_EQ(analysis.tasks_started_together(1e-9), 24u);
  // "The entire application takes 207 minutes." Ours lands at ~234 min
  // because the last-submitted (queued) tasks happen to be the longest
  // 100-epoch configs; the shape — longest-task-dominated makespan in the
  // 200-240 min band — is the reproduction target.
  EXPECT_NEAR(analysis.makespan() / 60.0, 220.0, 20.0);
  // "The remaining tasks are started as soon as a new resource is
  // available" — three cores ran two tasks each.
  EXPECT_EQ(analysis.reused_cores().size(), 3u);
  EXPECT_EQ(analysis.peak_concurrency(), 24u);
}

// The Figure 6 setup: 27 CIFAR tasks, node-exclusive, 28 vs 14 nodes.
TEST(PaperPipeline, Figure6MultiNodeComparison) {
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(kListing1);
  const ml::WorkloadModel workload = ml::cifar_paper_model();

  const auto run = [&](std::size_t nodes) {
    rt::RuntimeOptions opts;
    opts.cluster = cluster::marenostrum4(nodes);
    opts.cluster.worker_placement = cluster::WorkerPlacement::DedicatedNode;
    opts.simulate = true;
    opts.sim.execute_bodies = false;
    rt::Runtime runtime(std::move(opts));
    for (const auto& config : space.enumerate_grid()) {
      hpo::DriverOptions driver_options;
      driver_options.workload = workload;
      driver_options.trial_constraint = {.cpus = 48};
      runtime.submit(hpo::make_experiment_task(kEmptyDataset, config, driver_options, 0));
    }
    runtime.barrier();
    return runtime.analyze();
  };

  const auto on28 = run(28);
  const auto on14 = run(14);
  // 28 nodes: every task has its own node, all start together.
  EXPECT_EQ(on28.tasks_started_together(1e-9), 27u);
  EXPECT_EQ(on28.nodes_used(), 27u);
  // 14 nodes: 13 usable, two waves.
  EXPECT_EQ(on14.tasks_started_together(1e-9), 13u);
  EXPECT_EQ(on14.nodes_used(), 13u);
  // "It is possible to run the same application with half the number of
  // nodes for almost the same amount of time" (§6.1): far below the naive
  // 2x of halving the nodes (we measure ~1.4-1.5 with our duration mix).
  EXPECT_LT(on14.makespan() / on28.makespan(), 1.6);
  // And utilisation improves (§6.1: "a better utilisation of resources").
  EXPECT_GT(on14.mean_core_utilisation(), on28.mean_core_utilisation());
}

// The Figure 4 setup: one task constrained to a single core of a 48-core
// node; affinity holds and the runtime does not give it more.
TEST(PaperPipeline, Figure4SingleTaskAffinity) {
  rt::RuntimeOptions opts;
  opts.cluster = cluster::marenostrum4(1);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  hpo::DriverOptions driver_options;
  driver_options.workload = ml::mnist_paper_model();
  driver_options.trial_constraint = {.cpus = 1};
  const hpo::Config config =
      json::parse(R"({"optimizer":"SGD","num_epochs":20,"batch_size":64})");
  hpo::DriverOptions no_body = driver_options;
  rt::TaskDef def = hpo::make_experiment_task(kEmptyDataset, config, no_body, 0);
  def.body = {};  // cost-only
  runtime.submit(def);
  runtime.barrier();

  const auto analysis = runtime.analyze();
  ASSERT_EQ(analysis.core_usage().size(), 1u);  // exactly one core ever busy
  EXPECT_NEAR(analysis.makespan() / 60.0, 29.0, 4.0);  // "around 29 mins"
}

// Full real pipeline on the threaded backend: JSON file -> grid -> train ->
// results + graph + trace artifacts.
TEST(PaperPipeline, RealTrainingEndToEnd) {
  const std::string config_path = "/tmp/chpo_listing1.json";
  {
    std::ofstream out(config_path);
    out << R"({"optimizer": ["Adam", "SGD"], "num_epochs": [1, 2], "batch_size": [16]})";
  }
  const hpo::SearchSpace space = hpo::SearchSpace::from_file(config_path);
  const ml::Dataset dataset = ml::make_mnist_like(150, 50, 42);

  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(opts));
  hpo::HpoDriver driver(runtime.main_study(), dataset, hpo::DriverOptions{.seed = 1});
  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);

  ASSERT_EQ(outcome.trials.size(), 4u);
  ASSERT_NE(outcome.best(), nullptr);
  EXPECT_GT(outcome.best()->result.final_val_accuracy, 0.15);

  // Artifacts: DOT graph with experiments and sync node, Gantt, prv files.
  const std::string dot = runtime.graph_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("sync"), std::string::npos);

  const std::string gantt = trace::render_gantt(runtime.trace().events());
  EXPECT_NE(gantt.find("|"), std::string::npos);

  trace::write_prv_files("/tmp/chpo_e2e", runtime.trace().events(), runtime.cluster_spec());
  std::ifstream prv("/tmp/chpo_e2e.prv");
  EXPECT_TRUE(prv.good());
  std::remove("/tmp/chpo_e2e.prv");
  std::remove("/tmp/chpo_e2e.row");
  std::remove(config_path.c_str());
}

// Fault tolerance at the application level: one flaky experiment does not
// change the HPO outcome.
TEST(PaperPipeline, HpoSurvivesInjectedFailures) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 43);
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(2, node);
  opts.injector.force_task_failures(0, 2);  // first experiment fails twice
  rt::Runtime runtime(std::move(opts));
  hpo::DriverOptions options;
  options.epoch_cap = 1;
  hpo::HpoDriver driver(runtime.main_study(), dataset, options);
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(
      R"({"optimizer": ["Adam", "SGD"], "batch_size": [16, 32]})");
  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);
  ASSERT_EQ(outcome.trials.size(), 4u);
  for (const auto& t : outcome.trials) EXPECT_FALSE(t.failed);
  EXPECT_EQ(runtime.analyze().retry_count(), 2u);
}

// Tracing off still computes the right results (the paper's overhead flag).
TEST(PaperPipeline, TracingOffStillCorrect) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 44);
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(1, node);
  opts.tracing = false;
  rt::Runtime runtime(std::move(opts));
  hpo::DriverOptions options;
  options.epoch_cap = 1;
  hpo::HpoDriver driver(runtime.main_study(), dataset, options);
  const hpo::SearchSpace space =
      hpo::SearchSpace::from_json_text(R"({"optimizer": ["SGD"], "batch_size": [16, 32]})");
  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);
  EXPECT_EQ(outcome.trials.size(), 2u);
  EXPECT_EQ(runtime.trace().size(), 0u);
}

}  // namespace
}  // namespace chpo
