// Layer tests: shapes, determinism and numeric gradient checks.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ml/layers.hpp"
#include "ml/model.hpp"

namespace chpo::ml {
namespace {

/// Central-difference check of dLoss/dInput for a layer, where
/// Loss = sum(forward(x) * w) with fixed random weights w.
void check_input_gradient(Layer& layer, const Tensor& x, float tolerance = 2e-2f) {
  Rng rng(42);
  Tensor y = layer.forward(x, /*training=*/true, 1);
  const Tensor weights = Tensor::randn(y.shape(), rng);

  Tensor dy(y.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) dy[i] = weights[i];
  const Tensor dx = layer.backward(dy, 1);

  const auto loss_at = [&](const Tensor& input) {
    Tensor out = layer.forward(input, true, 1);
    double loss = 0;
    for (std::size_t i = 0; i < out.size(); ++i) loss += out[i] * weights[i];
    return loss;
  };

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < std::min<std::size_t>(x.size(), 24); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const double numeric = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, tolerance) << "input grad mismatch at " << i;
  }
}

TEST(Dense, OutputShape) {
  Rng rng(1);
  Dense dense(8, 3, rng);
  const Tensor x = Tensor::randn({5, 8}, rng);
  const Tensor y = dense.forward(x, true, 1);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 3u);
}

TEST(Dense, InputGradientNumericCheck) {
  Rng rng(2);
  Dense dense(6, 4, rng);
  check_input_gradient(dense, Tensor::randn({3, 6}, rng));
}

TEST(Dense, WeightGradientNumericCheck) {
  Rng rng(3);
  Dense dense(4, 3, rng);
  const Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = dense.forward(x, true, 1);
  const Tensor weights = Tensor::randn(y.shape(), rng);
  Tensor dy(y.shape());
  for (std::size_t i = 0; i < dy.size(); ++i) dy[i] = weights[i];
  dense.backward(dy, 1);

  Tensor* w = dense.params()[0];
  Tensor* dw = dense.grads()[0];
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < 6; ++i) {
    const float saved = (*w)[i];
    const auto loss_at = [&] {
      Tensor out = dense.forward(x, true, 1);
      double loss = 0;
      for (std::size_t j = 0; j < out.size(); ++j) loss += out[j] * weights[j];
      return loss;
    };
    (*w)[i] = saved + eps;
    const double lp = loss_at();
    (*w)[i] = saved - eps;
    const double lm = loss_at();
    (*w)[i] = saved;
    EXPECT_NEAR((*dw)[i], (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(Dense, ThreadedForwardMatchesSerial) {
  Rng rng(4);
  Dense dense(16, 8, rng);
  const Tensor x = Tensor::randn({10, 16}, rng);
  const Tensor serial = dense.forward(x, true, 1);
  const Tensor threaded = dense.forward(x, true, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_FLOAT_EQ(serial[i], threaded[i]);
}

TEST(ReluLayer, GradientMasksNegatives) {
  Rng rng(5);
  ReLU relu;
  check_input_gradient(relu, Tensor::randn({2, 10}, rng));
}

TEST(Conv2D, OutputShapeValidPadding) {
  Rng rng(6);
  Conv2D conv(3, 8, 8, 4, 3, rng);
  EXPECT_EQ(conv.out_height(), 6u);
  EXPECT_EQ(conv.out_width(), 6u);
  const Tensor x = Tensor::randn({2, 3 * 8 * 8}, rng);
  const Tensor y = conv.forward(x, true, 1);
  EXPECT_EQ(y.dim(1), 4u * 6 * 6);
}

TEST(Conv2D, KernelTooLargeThrows) {
  Rng rng(7);
  EXPECT_THROW(Conv2D(1, 2, 2, 4, 3, rng), std::invalid_argument);
}

TEST(Conv2D, InputGradientNumericCheck) {
  Rng rng(8);
  Conv2D conv(1, 5, 5, 2, 3, rng);
  check_input_gradient(conv, Tensor::randn({2, 25}, rng));
}

TEST(Conv2D, ThreadedMatchesSerial) {
  Rng rng(9);
  Conv2D conv(2, 6, 6, 3, 3, rng);
  const Tensor x = Tensor::randn({4, 2 * 36}, rng);
  const Tensor a = conv.forward(x, true, 1);
  const Tensor b = conv.forward(x, true, 4);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  // A single 1x1-ish check: 1-channel 3x3 kernel with a centred 1 acts as a
  // shifted copy on the valid region.
  Rng rng(10);
  Conv2D conv(1, 4, 4, 1, 3, rng);
  Tensor* w = conv.params()[0];
  Tensor* b = conv.params()[1];
  w->fill(0.0f);
  (*w)[4] = 1.0f;  // centre of the 3x3 kernel
  b->fill(0.0f);
  Tensor x({1, 16});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x, false, 1);
  // Output (2x2) equals the central 2x2 of the input.
  EXPECT_FLOAT_EQ(y[0], x[1 * 4 + 1]);
  EXPECT_FLOAT_EQ(y[3], x[2 * 4 + 2]);
}

TEST(MaxPool, ForwardPicksMaxima) {
  MaxPool2D pool(1, 4, 4);
  Tensor x({1, 16});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x, true, 1);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_FLOAT_EQ(y[0], 5);
  EXPECT_FLOAT_EQ(y[1], 7);
  EXPECT_FLOAT_EQ(y[2], 13);
  EXPECT_FLOAT_EQ(y[3], 15);
}

TEST(MaxPool, BackwardRoutesToWinners) {
  MaxPool2D pool(1, 4, 4);
  Tensor x({1, 16});
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  pool.forward(x, true, 1);
  Tensor dy({1, 4}, 1.0f);
  const Tensor dx = pool.backward(dy, 1);
  EXPECT_FLOAT_EQ(dx[5], 1);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[15], 1);
}

TEST(Dropout, EvalIsIdentity) {
  Dropout dropout(0.5, 1);
  Rng rng(11);
  const Tensor x = Tensor::randn({3, 10}, rng);
  const Tensor y = dropout.forward(x, /*training=*/false, 1);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(x[i], y[i]);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Dropout dropout(0.5, 2);
  Tensor x({1, 1000}, 1.0f);
  const Tensor y = dropout.forward(x, true, 1);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.07);
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(Dropout(1.0, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1, 1), std::invalid_argument);
}

TEST(Model, MlpEndToEndShapes) {
  Rng rng(12);
  Model mlp = make_mlp(20, {16, 8}, 4, rng);
  const Tensor x = Tensor::randn({6, 20}, rng);
  const Tensor logits = mlp.forward(x, true, 1);
  EXPECT_EQ(logits.dim(1), 4u);
  EXPECT_EQ(mlp.layer_count(), 5u);  // dense relu dense relu dense
  EXPECT_EQ(mlp.parameter_count(), 20u * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4);
}

TEST(Model, CnnEndToEndShapes) {
  Rng rng(13);
  Model cnn = make_cnn(3, 32, 32, 10, rng);
  const Tensor x = Tensor::randn({2, 3 * 32 * 32}, rng);
  const Tensor logits = cnn.forward(x, true, 1);
  EXPECT_EQ(logits.dim(0), 2u);
  EXPECT_EQ(logits.dim(1), 10u);
  EXPECT_GT(cnn.flops_per_sample(), 0u);
}

TEST(Model, BackwardFillsAllGradients) {
  Rng rng(14);
  Model mlp = make_mlp(10, {8}, 3, rng);
  const Tensor x = Tensor::randn({4, 10}, rng);
  const Tensor logits = mlp.forward(x, true, 1);
  Tensor dlogits(logits.shape(), 0.1f);
  mlp.backward(dlogits, 1);
  for (Tensor* g : mlp.grads()) {
    double norm = 0;
    for (std::size_t i = 0; i < g->size(); ++i) norm += std::abs((*g)[i]);
    EXPECT_GT(norm, 0.0);
  }
}

}  // namespace
}  // namespace chpo::ml
