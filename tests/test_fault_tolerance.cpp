// Fault-tolerance tests: the paper's retry policy ("try the same node,
// then restart on another node"), node deaths, and cascading cancellation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim_nodes(std::size_t nodes, unsigned cpus = 2) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = true;
  return opts;
}

TaskDef timed(std::string name, double seconds) {
  TaskDef def;
  def.name = std::move(name);
  def.constraint = {.cpus = 1};
  def.body = [](TaskContext&) { return std::any(1); };
  def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
  return def;
}

TEST(FaultInjector, ForcedFailuresAreConsumed) {
  FaultInjector injector;
  injector.force_task_failures(5, 2);
  EXPECT_TRUE(injector.should_fail(5, 1));
  EXPECT_TRUE(injector.should_fail(5, 2));
  EXPECT_FALSE(injector.should_fail(5, 3));
  EXPECT_FALSE(injector.should_fail(6, 1));
}

TEST(FaultInjector, ProbabilisticFailuresRoughlyMatchRate) {
  FaultInjector injector(123, 0.25);
  int failures = 0;
  for (int i = 0; i < 4000; ++i)
    if (injector.should_fail(static_cast<TaskId>(i), 1)) ++failures;
  EXPECT_NEAR(failures / 4000.0, 0.25, 0.03);
}

TEST(FaultTolerance, FirstRetryStaysOnSameNode) {
  RuntimeOptions opts = sim_nodes(3);
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("retry_same", 10.0));
  runtime.wait_on(f);
  const auto spans = runtime.analyze().spans();
  ASSERT_EQ(spans.size(), 2u);  // failed attempt + successful retry
  EXPECT_EQ(spans[0].node, spans[1].node);
  EXPECT_EQ(spans[1].attempt, 2);
}

TEST(FaultTolerance, SecondRetryMovesToAnotherNode) {
  RuntimeOptions opts = sim_nodes(3);
  opts.injector.force_task_failures(0, 2);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("retry_other", 10.0));
  runtime.wait_on(f);
  const auto spans = runtime.analyze().spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].node, spans[1].node);  // same-node retry first
  EXPECT_NE(spans[2].node, spans[0].node);  // then another node
}

TEST(FaultTolerance, RetriesConsumeVirtualTime) {
  RuntimeOptions opts = sim_nodes(2);
  opts.injector.force_task_failures(0, 2);
  Runtime runtime(std::move(opts));
  runtime.submit(timed("expensive_failures", 10.0));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 30.0);  // three 10 s attempts
}

TEST(FaultTolerance, ExhaustedAttemptsFailTask) {
  RuntimeOptions opts = sim_nodes(2);
  opts.fault_policy.max_attempts = 2;
  opts.injector.force_task_failures(0, 5);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("doomed", 1.0));
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
}

TEST(FaultTolerance, NodeDeathReschedulesRunningTasks) {
  RuntimeOptions opts = sim_nodes(2, 1);
  opts.injector.schedule_node_failure(0, 5.0);  // mid-flight
  Runtime runtime(std::move(opts));
  const Future a = runtime.submit(timed("victim", 10.0));   // node 0
  const Future b = runtime.submit(timed("survivor", 10.0));  // node 1
  EXPECT_EQ(runtime.wait_on_as<int>(a), 1);  // still completes
  EXPECT_EQ(runtime.wait_on_as<int>(b), 1);
  const auto spans = runtime.analyze().spans();
  // Victim ran twice: killed at 5 s, restarted on node 1 after it frees.
  ASSERT_EQ(spans.size(), 3u);
  const auto& final_run = spans.back();
  EXPECT_EQ(final_run.node, 1);
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 20.0);
}

TEST(FaultTolerance, NodeDeathBeforeAnyWork) {
  RuntimeOptions opts = sim_nodes(2, 1);
  opts.injector.schedule_node_failure(0, 0.0);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("displaced", 10.0));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
}

TEST(FaultTolerance, AllNodesDeadFailsPendingTasks) {
  RuntimeOptions opts = sim_nodes(1, 1);
  opts.injector.schedule_node_failure(0, 5.0);
  opts.fault_policy.max_attempts = 5;
  Runtime runtime(std::move(opts));
  const Future running = runtime.submit(timed("killed", 10.0));
  const Future queued = runtime.submit(timed("never_started", 10.0));
  EXPECT_THROW(runtime.wait_on(running), TaskFailedError);
  EXPECT_THROW(runtime.wait_on(queued), TaskFailedError);
}

TEST(FaultTolerance, FailureDoesNotAffectIndependentTasks) {
  RuntimeOptions opts = sim_nodes(2);
  opts.fault_policy.max_attempts = 1;
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));
  const Future bad = runtime.submit(timed("bad", 5.0));
  std::vector<Future> good;
  for (int i = 0; i < 6; ++i) good.push_back(runtime.submit(timed("good", 5.0)));
  EXPECT_THROW(runtime.wait_on(bad), TaskFailedError);
  for (auto& f : good) EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
}

TEST(FaultTolerance, CascadingCancellation) {
  RuntimeOptions opts = sim_nodes(1);
  opts.fault_policy.max_attempts = 1;
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));
  const Future root = runtime.submit(timed("root", 1.0));
  TaskDef mid_def = timed("mid", 1.0);
  const Future mid = runtime.submit(mid_def, {{root.data, Direction::In}});
  TaskDef leaf_def = timed("leaf", 1.0);
  const Future leaf = runtime.submit(leaf_def, {{mid.data, Direction::In}});
  EXPECT_THROW(runtime.wait_on(leaf), TaskFailedError);
  EXPECT_THROW(runtime.wait_on(mid), TaskFailedError);
}

TEST(Timeout, SimKillsAttemptAtDeadlineAndRetries) {
  RuntimeOptions opts = sim_nodes(2);
  Runtime runtime(std::move(opts));
  TaskDef def = timed("slow", 100.0);
  def.timeout_seconds = 10.0;
  const Future f = runtime.submit(def);
  // Every attempt times out at 10 s; 3 attempts exhaust the policy.
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
  EXPECT_DOUBLE_EQ(runtime.now(), 30.0);
  EXPECT_EQ(runtime.analyze().failure_count(), 3u);
}

TEST(Timeout, FastTaskUnaffected) {
  RuntimeOptions opts = sim_nodes(1);
  Runtime runtime(std::move(opts));
  TaskDef def = timed("fast", 5.0);
  def.timeout_seconds = 10.0;
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  EXPECT_DOUBLE_EQ(runtime.now(), 5.0);
}

TEST(Timeout, ThreadBackendReapsHungTaskInFlight) {
  // A deliberately hung (sleeping) body must be reaped at its deadline,
  // not when it happens to return: with a 1.5 s sleep and a 30 ms timeout,
  // the failure has to surface long before the body wakes up.
  RuntimeOptions opts = sim_nodes(1);
  opts.simulate = false;
  opts.fault_policy.max_attempts = 1;
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "sleepy";
  def.timeout_seconds = 0.03;
  def.body = [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    return std::any(1);
  };
  const Future f = runtime.submit(def);
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
  EXPECT_LT(runtime.now(), 1.0);  // decided at the deadline, not post-hoc
  // The worker is still inside the body; shutdown must drain it cleanly
  // and drop its stale completion (covered by the runtime destructor).
}

TEST(Timeout, ThreadBackendRetriesWhileHungAttemptStillRuns) {
  // Reap-and-retry: attempt 1 hangs past its deadline, the retry runs (and
  // succeeds) while the hung body is *still sleeping* on its worker thread.
  RuntimeOptions opts = sim_nodes(1);  // 2 cpus: a free slot exists for the retry
  opts.simulate = false;
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "hung_once";
  def.timeout_seconds = 0.03;
  def.body = [](TaskContext& ctx) {
    if (ctx.attempt() == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1500));
    return std::any(ctx.attempt());
  };
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 2);
  EXPECT_LT(runtime.now(), 1.0);  // did not wait for the hung attempt
  EXPECT_GE(runtime.analyze().failure_count(), 1u);
}

TEST(Backoff, RetriesWaitOutExponentialDelays) {
  // Failures at t=10 and t=21: the first retry waits base=1 s (same node),
  // the second waits 2 s (resubmitted elsewhere). All on the virtual clock.
  RuntimeOptions opts = sim_nodes(2);
  opts.fault_policy.backoff_base_seconds = 1.0;
  opts.injector.force_task_failures(0, 2);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("flaky", 10.0));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  // [0,10] fail, +1 s, [11,21] fail, +2 s, [23,33] success.
  EXPECT_DOUBLE_EQ(runtime.now(), 33.0);
  int backoffs = 0;
  for (const auto& e : runtime.trace().events())
    backoffs += e.kind == trace::EventKind::Backoff;
  EXPECT_EQ(backoffs, 2);
}

TEST(Backoff, CancelDuringDelayWins) {
  // A task sitting out its backoff delay holds no resources and can be
  // cancelled before the retry ever launches.
  RuntimeOptions opts = sim_nodes(1);
  opts.fault_policy.backoff_base_seconds = 50.0;
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("delayed", 10.0));
  EXPECT_FALSE(runtime.wait_all_for(20.0));  // failed at 10, retry due at 60
  EXPECT_TRUE(runtime.cancel(f));
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
  EXPECT_LT(runtime.now(), 60.0);  // never waited for the delayed retry
}

TEST(Speculation, DuplicateAttemptRescuesStraggler) {
  // Three 10 s siblings establish the baseline; the fourth is stuck on a
  // node where it would take 500 s. At 2x the 0.75-quantile (t=20) a
  // duplicate lands on the other node and wins at t=30.
  RuntimeOptions opts = sim_nodes(2);
  opts.speculation.enabled = true;
  opts.speculation.min_observations = 3;
  opts.speculation.straggler_multiplier = 2.0;
  Runtime runtime(std::move(opts));
  TaskDef straggler = timed("job", 10.0);
  straggler.cost = [](const Placement& p, const cluster::NodeSpec&) {
    return p.node == 0 ? 500.0 : 10.0;
  };
  const Future slow = runtime.submit(straggler);  // first-fit: node 0
  std::vector<Future> fast;
  for (int i = 0; i < 3; ++i) fast.push_back(runtime.submit(timed("job", 10.0)));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.now(), 30.0);
  EXPECT_EQ(runtime.wait_on_as<int>(slow), 1);
  int detected = 0, launched = 0, won = 0;
  for (const auto& e : runtime.trace().events()) {
    detected += e.kind == trace::EventKind::StragglerDetected;
    launched += e.kind == trace::EventKind::SpeculativeLaunch;
    won += e.kind == trace::EventKind::SpeculativeWin;
  }
  EXPECT_EQ(detected, 1);
  EXPECT_EQ(launched, 1);
  EXPECT_EQ(won, 1);
}

TEST(Speculation, OriginalWinsAndLoserIsDiscarded) {
  // The straggler recovers on its own at t=25, before its duplicate (due
  // t=30) finishes: first terminal attempt wins, the duplicate's result is
  // discarded through the abandon-on-finish path.
  RuntimeOptions opts = sim_nodes(2);
  opts.speculation.enabled = true;
  opts.speculation.min_observations = 3;
  opts.speculation.straggler_multiplier = 2.0;
  Runtime runtime(std::move(opts));
  TaskDef straggler = timed("job", 10.0);
  straggler.cost = [](const Placement& p, const cluster::NodeSpec&) {
    return p.node == 0 ? 25.0 : 10.0;
  };
  const Future slow = runtime.submit(straggler);
  for (int i = 0; i < 3; ++i) runtime.submit(timed("job", 10.0));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.now(), 25.0);
  EXPECT_EQ(runtime.wait_on_as<int>(slow), 1);
  int launched = 0, won = 0;
  for (const auto& e : runtime.trace().events()) {
    launched += e.kind == trace::EventKind::SpeculativeLaunch;
    won += e.kind == trace::EventKind::SpeculativeWin;
  }
  EXPECT_EQ(launched, 1);
  EXPECT_EQ(won, 0);  // the original landed first
}

TEST(Speculation, AdaptiveTimeoutKillsUnboundedAttempt) {
  // No TaskDef timeout, but adaptive_timeout_multiplier=4 kills attempts
  // at 4x the observed quantile. The straggler's attempts keep timing out
  // until the policy exhausts (its cost on every node is 500 s).
  RuntimeOptions opts = sim_nodes(2);
  opts.speculation.enabled = true;
  opts.speculation.min_observations = 3;
  opts.speculation.adaptive_timeout_multiplier = 4.0;
  opts.speculation.max_duplicates = 0;   // isolate the timeout mechanism
  opts.fault_policy.max_attempts = 2;    // both attempts hit the 40 s deadline
  Runtime runtime(std::move(opts));
  // Stuck tasks need a whole node, so the second one can only dispatch
  // after every fast sibling has finished — by then the 3-sample baseline
  // (10 s) exists and the attempt gets a 4x10 = 40 s adaptive deadline.
  TaskDef stuck = timed("job", 500.0);
  stuck.constraint = {.cpus = 2};
  const Future f = runtime.submit(stuck);  // no baseline yet: runs the full 500 s
  for (int i = 0; i < 3; ++i) runtime.submit(timed("job", 10.0));
  runtime.submit(stuck);  // queued behind; every attempt times out at 40 s
  runtime.barrier();
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  EXPECT_GE(runtime.analyze().failure_count(), 1u);
  bool timed_out = false;
  for (const auto& e : runtime.trace().events())
    timed_out = timed_out || (e.kind == trace::EventKind::TaskFailure && e.task_id == 4);
  EXPECT_TRUE(timed_out);
  EXPECT_THROW(runtime.wait_on(runtime.graph().task(4).result), TaskFailedError);
}

TEST(FaultTolerance, ThreadBackendNodeExclusionWorksToo) {
  // Forced failures on the threaded backend follow the same policy.
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(2, node);
  opts.injector.force_task_failures(0, 2);
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "which_node";
  def.body = [](TaskContext& ctx) { return std::any(ctx.node()); };
  const Future f = runtime.submit(def);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);  // third attempt excluded node 0
}

}  // namespace
}  // namespace chpo::rt
