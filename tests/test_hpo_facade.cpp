// Tests for the one-call optimize() facade and trial checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "hpo/algorithms.hpp"
#include "hpo/checkpoint.hpp"
#include "hpo/optimize.hpp"

namespace chpo::hpo {
namespace {

constexpr const char* kSpace = R"({
  "optimizer": ["Adam", "SGD"],
  "num_epochs": [1, 2],
  "batch_size": [16]
})";

TEST(Optimize, GridRunsEverything) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 1);
  const HpoOutcome outcome = optimize(dataset, kSpace, "grid", {.seed = 5});
  EXPECT_EQ(outcome.trials.size(), 4u);
  EXPECT_NE(outcome.best(), nullptr);
}

TEST(Optimize, RandomHonoursBudget) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 2);
  const HpoOutcome outcome =
      optimize(dataset, kSpace, "random", {.budget = 3, .epoch_cap = 1, .seed = 5});
  EXPECT_EQ(outcome.trials.size(), 3u);
}

TEST(Optimize, ModelBasedAlgorithmsWork) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 3);
  SearchSpace space;
  space.add_float("learning_rate", 1e-4, 1e-1, true);
  for (const char* algorithm : {"gp", "tpe"}) {
    const HpoOutcome outcome =
        optimize(dataset, space, algorithm, {.budget = 4, .epoch_cap = 1, .seed = 5});
    EXPECT_EQ(outcome.trials.size(), 4u) << algorithm;
  }
}

TEST(Optimize, StopOnAccuracy) {
  const ml::Dataset dataset = ml::make_mnist_like(300, 100, 4);
  OptimizeOptions options;
  options.stop_on_accuracy = 0.3;
  options.epoch_cap = 3;
  const HpoOutcome outcome = optimize(dataset, kSpace, "grid", options);
  EXPECT_TRUE(outcome.stopped_early);
}

TEST(Optimize, UnknownAlgorithmThrows) {
  const ml::Dataset dataset = ml::make_mnist_like(20, 10, 5);
  EXPECT_THROW(optimize(dataset, kSpace, "simulated-annealing", {}), std::invalid_argument);
  EXPECT_THROW(optimize(dataset, "not json", "grid", {}), json::JsonError);
}

// ------------------------------------------------------------ checkpoint

struct CheckpointFixture : ::testing::Test {
  void SetUp() override { path = "/tmp/chpo_checkpoint_test.json"; std::remove(path.c_str()); }
  void TearDown() override { std::remove(path.c_str()); }
  std::string path;
};

Trial make_trial(int index, const char* optimizer, double accuracy) {
  Trial trial;
  trial.index = index;
  trial.config.set("optimizer", json::Value(optimizer));
  trial.config.set("num_epochs", json::Value(2));
  ml::EpochStats e1{.epoch = 1, .train_loss = 1.5, .train_accuracy = 0.4, .val_accuracy = 0.5};
  ml::EpochStats e2{.epoch = 2, .train_loss = 0.9, .train_accuracy = 0.7, .val_accuracy = accuracy};
  trial.result.history = {e1, e2};
  trial.result.final_val_accuracy = accuracy;
  trial.result.best_val_accuracy = accuracy;
  trial.result.epochs_run = 2;
  return trial;
}

TEST_F(CheckpointFixture, RoundTripPreservesTrials) {
  std::vector<Trial> trials{make_trial(0, "Adam", 0.8), make_trial(1, "SGD", 0.7)};
  Trial failed;
  failed.index = 2;
  failed.config.set("optimizer", json::Value("RMSprop"));
  failed.failed = true;
  failed.failure_reason = "node failure";
  trials.push_back(failed);

  save_checkpoint(path, trials);
  const std::vector<Trial> loaded = load_checkpoint(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0].result.final_val_accuracy, 0.8);
  EXPECT_EQ(loaded[0].result.history.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].result.history[1].train_loss, 0.9);
  EXPECT_EQ(json::serialize(loaded[1].config), json::serialize(trials[1].config));
  EXPECT_TRUE(loaded[2].failed);
  EXPECT_EQ(loaded[2].failure_reason, "node failure");
}

TEST_F(CheckpointFixture, MissingFileLoadsEmpty) {
  EXPECT_TRUE(load_checkpoint("/tmp/definitely_missing_checkpoint.json").empty());
}

TEST_F(CheckpointFixture, CorruptFileStartsFresh) {
  // A damaged checkpoint must never abort a run: it is logged and treated
  // as absent so the driver starts from scratch.
  {
    std::ofstream out(path);
    out << "{\"format\": \"something-else\"}";
  }
  EXPECT_TRUE(load_checkpoint(path).empty());
}

TEST_F(CheckpointFixture, FindCompletedMatchesByConfig) {
  const std::vector<Trial> trials{make_trial(0, "Adam", 0.8), make_trial(1, "SGD", 0.7)};
  Config probe;
  probe.set("optimizer", json::Value("SGD"));
  probe.set("num_epochs", json::Value(2));
  const Trial* hit = find_completed(trials, probe);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->result.final_val_accuracy, 0.7);
  probe.set("num_epochs", json::Value(3));
  EXPECT_EQ(find_completed(trials, probe), nullptr);
}

TEST_F(CheckpointFixture, DriverReplaysCheckpointedTrials) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 6);
  const SearchSpace space = SearchSpace::from_json_text(kSpace);

  rt::RuntimeOptions rt_options;
  cluster::NodeSpec node;
  node.cpus = 2;
  rt_options.cluster = cluster::homogeneous(1, node);

  DriverOptions driver_options;
  driver_options.epoch_cap = 1;
  driver_options.checkpoint_path = path;

  // First run: everything trains, checkpoint written.
  HpoOutcome first;
  {
    rt::Runtime runtime(std::move(rt_options));
    HpoDriver driver(runtime.main_study(), dataset, driver_options);
    GridSearch grid(space);
    first = driver.run(grid);
  }
  ASSERT_EQ(first.trials.size(), 4u);
  EXPECT_TRUE(std::filesystem::exists(path));

  // Second run: all four configs replay; no tasks are submitted.
  rt::RuntimeOptions rt_options2;
  rt_options2.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(rt_options2));
  HpoDriver driver(runtime.main_study(), dataset, driver_options);
  GridSearch grid(space);
  const HpoOutcome second = driver.run(grid);
  ASSERT_EQ(second.trials.size(), 4u);
  EXPECT_EQ(runtime.task_count(), 0u);  // nothing resubmitted
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(second.trials[i].result.final_val_accuracy,
                     first.trials[i].result.final_val_accuracy);
}

TEST_F(CheckpointFixture, PartialCheckpointOnlySkipsCompleted) {
  const ml::Dataset dataset = ml::make_mnist_like(80, 30, 7);
  const SearchSpace space = SearchSpace::from_json_text(kSpace);
  const auto grid_configs = space.enumerate_grid();

  // Pretend only the first two configs finished before a crash.
  std::vector<Trial> partial;
  for (int i = 0; i < 2; ++i) {
    Trial t = make_trial(i, "x", 0.9);
    t.config = grid_configs[static_cast<std::size_t>(i)];
    partial.push_back(std::move(t));
  }
  save_checkpoint(path, partial);

  cluster::NodeSpec node;
  node.cpus = 2;
  rt::RuntimeOptions rt_options;
  rt_options.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(rt_options));
  DriverOptions driver_options;
  driver_options.epoch_cap = 1;
  driver_options.checkpoint_path = path;
  HpoDriver driver(runtime.main_study(), dataset, driver_options);
  GridSearch grid(space);
  const HpoOutcome outcome = driver.run(grid);
  ASSERT_EQ(outcome.trials.size(), 4u);
  EXPECT_EQ(runtime.task_count(), 2u);  // only the missing two trained
  EXPECT_DOUBLE_EQ(outcome.trials[0].result.final_val_accuracy, 0.9);  // replayed
  // Final checkpoint now holds all four.
  EXPECT_EQ(load_checkpoint(path).size(), 4u);
}

}  // namespace
}  // namespace chpo::hpo
