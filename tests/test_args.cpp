// Unit tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "support/args.hpp"

namespace chpo {
namespace {

ArgParser make_parser() {
  ArgParser args;
  args.add_option("algorithm", "which algorithm", "grid")
      .add_option("budget", "evaluations", "16")
      .add_option("rate", "a double", "")
      .add_flag("simulate", "use the simulator");
  return args;
}

bool parse(ArgParser& args, std::initializer_list<const char*> argv) {
  std::vector<const char*> full{"prog"};
  full.insert(full.end(), argv);
  return args.parse(static_cast<int>(full.size()), full.data());
}

TEST(Args, SeparateValueForm) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--algorithm", "random", "space.json"}));
  EXPECT_EQ(args.get("algorithm"), "random");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "space.json");
}

TEST(Args, EqualsForm) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--budget=32"}));
  EXPECT_EQ(args.get_int("budget", 0), 32);
}

TEST(Args, DefaultsApply) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {}));
  EXPECT_EQ(args.get("algorithm"), "grid");
  EXPECT_EQ(args.get_int("budget", -1), 16);
  EXPECT_FALSE(args.has("algorithm"));  // not explicitly set
}

TEST(Args, Flags) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--simulate"}));
  EXPECT_TRUE(args.get_bool("simulate"));
  ArgParser args2 = make_parser();
  ASSERT_TRUE(parse(args2, {}));
  EXPECT_FALSE(args2.get_bool("simulate"));
}

TEST(Args, UnknownOptionFails) {
  ArgParser args = make_parser();
  EXPECT_FALSE(parse(args, {"--bogus", "1"}));
  EXPECT_NE(args.error().find("bogus"), std::string::npos);
}

TEST(Args, MissingValueFails) {
  ArgParser args = make_parser();
  EXPECT_FALSE(parse(args, {"--budget"}));
}

TEST(Args, FlagWithValueFails) {
  ArgParser args = make_parser();
  EXPECT_FALSE(parse(args, {"--simulate=yes"}));
}

TEST(Args, TypedFallbacksOnGarbage) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--budget", "not_a_number"}));
  EXPECT_EQ(args.get_int("budget", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.5), 0.5);
}

TEST(Args, DoubleParsing) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"--rate", "0.85"}));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.85);
}

TEST(Args, UsageListsOptions) {
  const ArgParser args = make_parser();
  const std::string usage = args.usage("prog", "does things");
  EXPECT_NE(usage.find("--algorithm"), std::string::npos);
  EXPECT_NE(usage.find("--simulate"), std::string::npos);
  EXPECT_NE(usage.find("default: grid"), std::string::npos);
}

TEST(Args, MixedPositionalAndOptions) {
  ArgParser args = make_parser();
  ASSERT_TRUE(parse(args, {"first.json", "--budget", "8", "second.json", "--simulate"}));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.get_int("budget", 0), 8);
  EXPECT_TRUE(args.get_bool("simulate"));
}

}  // namespace
}  // namespace chpo
