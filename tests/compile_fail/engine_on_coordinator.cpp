// Positive twin of engine_off_coordinator.cpp: the same Engine call *with*
// the capability held must compile cleanly under -Werror=thread-safety-analysis,
// proving the contract has no false positive on the sanctioned pattern.
#include "runtime/engine.hpp"

namespace chpo::rt {

void coordinator_call(Engine& engine) {
  EngineContextScope ctx(g_engine_ctx);
  engine.schedule(0.0);
}

}  // namespace chpo::rt
