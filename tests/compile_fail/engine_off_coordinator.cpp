// Compile-FAILURE fixture (clang only): calling a mutating Engine method
// without holding the engine-context capability must be rejected by
// -Werror=thread-safety-analysis. The `compile_fail_engine_off_coordinator`
// ctest builds this TU and asserts the build FAILS (WILL_FAIL); its twin
// engine_on_coordinator.cpp proves the annotated call compiles.
#include "runtime/engine.hpp"

namespace chpo::rt {

// No EngineContextScope: under clang -Wthread-safety this is
// "calling function 'schedule' requires holding 'g_engine_ctx' exclusively".
void off_coordinator_call(Engine& engine) { engine.schedule(0.0); }

}  // namespace chpo::rt
