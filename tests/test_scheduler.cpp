// Unit tests for the scheduling policies.
#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"

namespace chpo::rt {
namespace {

struct SchedulerFixture : ::testing::Test {
  SchedulerFixture() : graph(registry) {}

  TaskId add(const Constraint& c, bool priority = false) {
    TaskDef def;
    def.name = "t";
    def.constraint = c;
    def.priority = priority;
    return graph.add_task(def, {});
  }

  DataRegistry registry;
  TaskGraph graph;
};

TEST_F(SchedulerFixture, FifoPlacesInSubmissionOrder) {
  ResourceState rs(cluster::marenostrum4(1));
  std::vector<TaskId> ready{add({.cpus = 24}), add({.cpus = 24}), add({.cpus = 24})};
  FifoScheduler fifo;
  const auto dispatches = fifo.schedule(ready, graph, rs);
  ASSERT_EQ(dispatches.size(), 2u);  // third doesn't fit
  EXPECT_EQ(dispatches[0].task, ready[0]);
  EXPECT_EQ(dispatches[1].task, ready[1]);
}

TEST_F(SchedulerFixture, PrioritySchedulerJumpsQueue) {
  ResourceState rs(cluster::marenostrum4(1));
  const TaskId normal1 = add({.cpus = 24});
  const TaskId normal2 = add({.cpus = 24});
  const TaskId urgent = add({.cpus = 24}, /*priority=*/true);
  PriorityScheduler sched;
  const auto dispatches = sched.schedule({normal1, normal2, urgent}, graph, rs);
  ASSERT_EQ(dispatches.size(), 2u);
  EXPECT_EQ(dispatches[0].task, urgent);  // priority first
  EXPECT_EQ(dispatches[1].task, normal1);
}

TEST_F(SchedulerFixture, FillsMultipleNodes) {
  ResourceState rs(cluster::marenostrum4(3));
  std::vector<TaskId> ready;
  for (int i = 0; i < 3; ++i) ready.push_back(add({.cpus = 48}));
  PriorityScheduler sched;
  const auto dispatches = sched.schedule(ready, graph, rs);
  ASSERT_EQ(dispatches.size(), 3u);
  // One node-filling task each.
  std::vector<int> nodes;
  for (const auto& d : dispatches) nodes.push_back(d.placement.node);
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2}));
}

TEST_F(SchedulerFixture, RespectsExcludedNodes) {
  ResourceState rs(cluster::marenostrum4(2));
  const TaskId t = add({.cpus = 1});
  graph.task(t).excluded_nodes.push_back(0);
  PriorityScheduler sched;
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].placement.node, 1);
}

TEST_F(SchedulerFixture, AllNodesExcludedMeansNoPlacement) {
  ResourceState rs(cluster::marenostrum4(1));
  const TaskId t = add({.cpus = 1});
  graph.task(t).excluded_nodes.push_back(0);
  PriorityScheduler sched;
  EXPECT_TRUE(sched.schedule({t}, graph, rs).empty());
}

TEST_F(SchedulerFixture, LocalitySchedulerPrefersDataHolder) {
  cluster::ClusterSpec spec = cluster::marenostrum4(3);
  spec.has_parallel_fs = false;
  ResourceState rs(spec);
  // A large input written by a producer task; its output lands on node 2.
  const DataId big = registry.register_data(std::any(1), 1 << 30, "big", /*everywhere=*/false);
  TaskDef producer_def;
  producer_def.name = "producer";
  const TaskId producer = graph.add_task(producer_def, {{big, Direction::Out}});
  registry.commit(big, 1, std::any(2), /*node=*/2);
  graph.task(producer).state = TaskState::Done;

  TaskDef def;
  def.name = "consumer";
  def.constraint = {.cpus = 1};
  const TaskId t = graph.add_task(def, {{big, Direction::In}});
  // Mark the producer dependency as satisfied for this scheduling test.
  graph.task(t).deps_remaining = 0;

  LocalityScheduler sched;
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].placement.node, 2);
}

TEST_F(SchedulerFixture, LocalityFallsBackToFirstFit) {
  ResourceState rs(cluster::marenostrum4(2));
  const TaskId t = add({.cpus = 1});  // no inputs at all
  LocalityScheduler sched;
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].placement.node, 0);
}

TEST_F(SchedulerFixture, PlaceFirstFitHelper) {
  ResourceState rs(cluster::marenostrum4(2));
  const TaskId t = add({.cpus = 48});
  rs.try_allocate(0, Constraint{.cpus = 1});  // node 0 can no longer take 48
  const auto p = place_first_fit(graph.task(t), rs);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->node, 1);
}

TEST_F(SchedulerFixture, FactoryByName) {
  EXPECT_EQ(make_scheduler("fifo")->name(), "fifo");
  EXPECT_EQ(make_scheduler("priority")->name(), "priority");
  EXPECT_EQ(make_scheduler("locality")->name(), "locality");
  EXPECT_EQ(make_scheduler("cost-aware")->name(), "cost-aware");
  EXPECT_THROW(make_scheduler("nope"), std::invalid_argument);
}

TEST_F(SchedulerFixture, CostAwarePicksFastestNode) {
  // Heterogeneous rates: the cost model makes node 1 (fast) 4x cheaper.
  cluster::ClusterSpec spec;
  cluster::NodeSpec slow;
  slow.name = "slow";
  slow.cpus = 4;
  slow.core_rate = 0.5;
  cluster::NodeSpec fast = slow;
  fast.name = "fast";
  fast.core_rate = 2.0;
  spec.nodes = {slow, fast};
  ResourceState rs(spec);

  TaskDef def;
  def.name = "t";
  def.constraint = {.cpus = 1};
  def.cost = [](const Placement&, const cluster::NodeSpec& node) { return 100.0 / node.core_rate; };
  const TaskId t = graph.add_task(def, {});
  CostAwareScheduler sched;
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].placement.node, 1);  // first-fit would pick node 0
}

TEST_F(SchedulerFixture, CostAwareDefersSlowFallbackWhileFastIsBusy) {
  cluster::ClusterSpec spec;
  cluster::NodeSpec node;
  node.name = "gpuish";
  node.cpus = 8;
  node.gpus = 1;
  node.gpu_rate = 30.0;
  spec.nodes = {node};
  ResourceState rs(spec);
  // Occupy the GPU.
  const auto held = rs.try_allocate(0, Constraint{.gpus = 1});
  ASSERT_TRUE(held);

  TaskDef def;
  def.name = "t";
  def.constraint = {.cpus = 1, .gpus = 1};
  def.cost = [](const Placement& p, const cluster::NodeSpec&) {
    return p.gpu_count() > 0 ? 10.0 : 100.0;  // fallback 10x slower
  };
  TaskVariant cpu;
  cpu.constraint = {.cpus = 4};
  def.variants.push_back(std::move(cpu));
  const TaskId t = graph.add_task(def, {});

  CostAwareScheduler sched;
  // GPU busy, CPU fallback 10x worse than best possible: defer.
  EXPECT_TRUE(sched.schedule({t}, graph, rs).empty());
  // Once the GPU frees, the primary implementation is taken.
  rs.release(*held);
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].variant, -1);
  EXPECT_EQ(dispatches[0].placement.gpus.size(), 1u);
}

TEST_F(SchedulerFixture, CostAwareSpillsWhenFallbackIsCompetitive) {
  cluster::ClusterSpec spec;
  cluster::NodeSpec node;
  node.name = "gpuish";
  node.cpus = 8;
  node.gpus = 1;
  node.gpu_rate = 30.0;
  spec.nodes = {node};
  ResourceState rs(spec);
  const auto held = rs.try_allocate(0, Constraint{.gpus = 1});

  TaskDef def;
  def.name = "t";
  def.constraint = {.cpus = 1, .gpus = 1};
  def.cost = [](const Placement& p, const cluster::NodeSpec&) {
    return p.gpu_count() > 0 ? 10.0 : 15.0;  // fallback only 1.5x slower
  };
  TaskVariant cpu;
  cpu.constraint = {.cpus = 4};
  def.variants.push_back(std::move(cpu));
  const TaskId t = graph.add_task(def, {});
  CostAwareScheduler sched;
  const auto dispatches = sched.schedule({t}, graph, rs);
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].variant, 0);  // took the CPU fallback
  rs.release(*held);
}

TEST_F(SchedulerFixture, CostAwareWithoutCostModelsActsLikeFirstFit) {
  ResourceState rs(cluster::marenostrum4(2));
  const TaskId a = add({.cpus = 1});
  const TaskId b = add({.cpus = 1});
  CostAwareScheduler sched;
  const auto dispatches = sched.schedule({a, b}, graph, rs);
  ASSERT_EQ(dispatches.size(), 2u);
  EXPECT_EQ(dispatches[0].placement.node, 0);
  EXPECT_EQ(dispatches[1].placement.node, 0);
}

TEST_F(SchedulerFixture, GridOf27OnHalfNodeStarts24) {
  // The Figure 5 shape: 24 usable cores, 27 single-core tasks.
  cluster::ClusterSpec spec = cluster::marenostrum4(1);
  spec.worker_placement = cluster::WorkerPlacement::SharedCores;
  spec.worker_cores = 24;
  ResourceState rs(spec);
  std::vector<TaskId> ready;
  for (int i = 0; i < 27; ++i) ready.push_back(add({.cpus = 1}));
  PriorityScheduler sched;
  const auto dispatches = sched.schedule(ready, graph, rs);
  EXPECT_EQ(dispatches.size(), 24u);
}

}  // namespace
}  // namespace chpo::rt
