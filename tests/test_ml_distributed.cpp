// Tests for distributed data-parallel training on the task runtime.
#include <gtest/gtest.h>

#include "ml/distributed.hpp"

namespace chpo::ml {
namespace {

rt::RuntimeOptions thread_cluster(std::size_t nodes = 1, unsigned cpus = 4) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "t";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  return opts;
}

TEST(Shards, PartitionTrainingRowsExactly) {
  const Dataset ds = make_mnist_like(103, 20, 1);
  const auto shards = make_shards(ds, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total = 0;
  for (const Dataset& shard : shards) {
    total += shard.train_size();
    EXPECT_EQ(shard.test_size(), 20u);  // validation replicated
    EXPECT_EQ(shard.sample_features(), ds.sample_features());
  }
  EXPECT_EQ(total, 103u);
  // First row of shard 1 equals row ceil-boundary of the original.
  const std::size_t boundary = 103 / 4;
  for (std::size_t f = 0; f < 10; ++f)
    EXPECT_EQ(shards[1].train_x[f], ds.train_x[boundary * ds.sample_features() + f]);
}

TEST(Shards, InvalidCounts) {
  const Dataset ds = make_mnist_like(10, 5, 2);
  EXPECT_THROW(make_shards(ds, 0), std::invalid_argument);
  EXPECT_THROW(make_shards(ds, 11), std::invalid_argument);
}

TEST(Weights, SnapshotLoadRoundTrip) {
  Rng rng(3);
  Model a = make_mlp(10, {8}, 3, rng);
  Model b = make_mlp(10, {8}, 3, rng);  // different init
  const auto weights = snapshot_weights(a);
  load_weights(b, weights);
  const Tensor x = Tensor::randn({2, 10}, rng);
  const Tensor ya = a.forward(x, false, 1);
  const Tensor yb = b.forward(x, false, 1);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Weights, LoadMismatchThrows) {
  Rng rng(4);
  Model a = make_mlp(10, {8}, 3, rng);
  Model b = make_mlp(10, {16}, 3, rng);
  EXPECT_THROW(load_weights(b, snapshot_weights(a)), std::invalid_argument);
}

TEST(Weights, AverageIsElementwiseMean) {
  std::vector<Tensor> w1{Tensor({2}, 1.0f)}, w2{Tensor({2}, 3.0f)};
  const auto mean = average_weights({w1, w2});
  EXPECT_FLOAT_EQ(mean[0][0], 2.0f);
  EXPECT_THROW(average_weights({}), std::invalid_argument);
  std::vector<Tensor> bad{Tensor({3}, 0.0f)};
  EXPECT_THROW(average_weights({w1, bad}), std::invalid_argument);
}

TEST(DistributedTrain, LearnsAboveChance) {
  const Dataset ds = make_mnist_like(320, 80, 5);
  rt::Runtime runtime(thread_cluster(1, 4));
  DistributedOptions options;
  options.shards = 4;
  options.rounds = 5;
  options.local_epochs = 2;
  const DistributedResult result = distributed_train(runtime, ds, options);
  ASSERT_EQ(result.round_val_accuracy.size(), 5u);
  EXPECT_GT(result.final_val_accuracy, 0.4);  // chance 0.1
  EXPECT_FALSE(result.weights.empty());
}

TEST(DistributedTrain, AccuracyImprovesOverRounds) {
  const Dataset ds = make_mnist_like(240, 80, 6);
  rt::Runtime runtime(thread_cluster(1, 4));
  DistributedOptions options;
  options.shards = 3;
  options.rounds = 4;
  const DistributedResult result = distributed_train(runtime, ds, options);
  EXPECT_GT(result.round_val_accuracy.back(), result.round_val_accuracy.front() - 0.05);
  EXPECT_GT(result.round_val_accuracy.back(), 0.3);
}

TEST(DistributedTrain, SingleShardMatchesSerialShape) {
  // One shard, one round of E local epochs == plain training for E epochs
  // (modulo the averaging no-op).
  const Dataset ds = make_mnist_like(150, 50, 7);
  rt::Runtime runtime(thread_cluster());
  DistributedOptions options;
  options.shards = 1;
  options.rounds = 1;
  options.local_epochs = 3;
  const DistributedResult distributed = distributed_train(runtime, ds, options);

  TrainConfig serial = options.train;
  serial.num_epochs = 3;
  serial.seed = options.train.seed;  // shard run reseeds per round; compare loosely
  const TrainResult reference = run_experiment(ds, serial);
  EXPECT_NEAR(distributed.final_val_accuracy, reference.final_val_accuracy, 0.25);
}

TEST(DistributedTrain, GraphHasFanInPerRound) {
  const Dataset ds = make_mnist_like(120, 30, 8);
  rt::Runtime runtime(thread_cluster(1, 4));
  DistributedOptions options;
  options.shards = 4;
  options.rounds = 2;
  distributed_train(runtime, ds, options);
  // 2 rounds x (4 local_train + 1 average) tasks.
  EXPECT_EQ(runtime.task_count(), 10u);
  // Each average task has 4 predecessors.
  std::size_t averages = 0;
  for (std::size_t i = 0; i < runtime.task_count(); ++i) {
    const auto& task = runtime.graph().task(i);
    if (task.def.name == "average") {
      ++averages;
      EXPECT_EQ(task.predecessors.size(), 4u);
    }
  }
  EXPECT_EQ(averages, 2u);
}

TEST(DistributedTrain, RunsOnSimulatorWithDurations) {
  const Dataset ds = make_mnist_like(120, 30, 9);
  rt::RuntimeOptions opts = thread_cluster(4, 2);
  opts.simulate = true;
  rt::Runtime runtime(std::move(opts));
  DistributedOptions options;
  options.shards = 4;
  options.rounds = 2;
  options.shard_task_seconds = 50.0;
  const DistributedResult result = distributed_train(runtime, ds, options);
  EXPECT_GT(result.final_val_accuracy, 0.0);
  // Per round: locals overlap (4 nodes) then a 1 s average; the second round
  // also pays the main-program resharing, so just check the band.
  EXPECT_GE(runtime.now(), 2 * 51.0);
  EXPECT_LT(runtime.now(), 2 * 51.0 + 10.0);
}

TEST(DistributedTrain, SurvivesTaskFailures) {
  const Dataset ds = make_mnist_like(120, 30, 10);
  rt::RuntimeOptions opts = thread_cluster(2, 2);
  opts.injector.force_task_failures(0, 2);  // first local_train fails twice
  rt::Runtime runtime(std::move(opts));
  DistributedOptions options;
  options.shards = 2;
  options.rounds = 2;
  const DistributedResult result = distributed_train(runtime, ds, options);
  EXPECT_GT(result.final_val_accuracy, 0.1);
  EXPECT_EQ(runtime.analyze().retry_count(), 2u);
}

TEST(DistributedTrain, InvalidOptionsThrow) {
  const Dataset ds = make_mnist_like(40, 10, 11);
  rt::Runtime runtime(thread_cluster());
  DistributedOptions bad;
  bad.rounds = 0;
  EXPECT_THROW(distributed_train(runtime, ds, bad), std::invalid_argument);
  bad.rounds = 1;
  bad.local_epochs = 0;
  EXPECT_THROW(distributed_train(runtime, ds, bad), std::invalid_argument);
}

}  // namespace
}  // namespace chpo::ml
