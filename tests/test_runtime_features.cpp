// Tests for task groups, elastic node growth, and the Chrome trace export.
#include <gtest/gtest.h>

#include <fstream>

#include "jsonlite/json.hpp"
#include "runtime/runtime.hpp"
#include "trace/chrome_writer.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim(std::size_t nodes, unsigned cpus) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = true;
  return opts;
}

TaskDef timed(std::string name, double seconds) {
  TaskDef def;
  def.name = std::move(name);
  def.body = [](TaskContext&) { return std::any(1); };
  def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
  return def;
}

TEST(TaskGroups, BarrierWaitsOnlyItsGroup) {
  Runtime runtime(sim(1, 4));
  runtime.submit_in_group("phase1", timed("a", 10.0));
  runtime.submit_in_group("phase1", timed("b", 20.0));
  runtime.submit_in_group("phase2", timed("c", 100.0));
  runtime.barrier_group("phase1");
  // phase1 done at t=20; phase2 runs concurrently but we did not wait on it.
  EXPECT_GE(runtime.now(), 20.0);
  EXPECT_LT(runtime.now(), 100.0);
  EXPECT_TRUE(runtime.group_succeeded("phase1"));
  EXPECT_FALSE(runtime.group_succeeded("phase2"));  // still running
  runtime.barrier();
  EXPECT_TRUE(runtime.group_succeeded("phase2"));
}

TEST(TaskGroups, UnknownGroupIsNoop) {
  Runtime runtime(sim(1, 2));
  runtime.barrier_group("nothing");
  EXPECT_TRUE(runtime.group_succeeded("nothing"));
}

TEST(TaskGroups, GroupWithFailureReportsIt) {
  RuntimeOptions opts = sim(1, 2);
  opts.fault_policy.max_attempts = 1;
  opts.injector.force_task_failures(0, 1);
  Runtime runtime(std::move(opts));
  runtime.submit_in_group("g", timed("bad", 1.0));
  runtime.submit_in_group("g", timed("good", 1.0));
  runtime.barrier_group("g");
  EXPECT_FALSE(runtime.group_succeeded("g"));
}

TEST(Elasticity, QueuedTasksUseNewNode) {
  // 1 node, 2 cores, 4 long tasks: two queue. Adding a node mid-run lets
  // them start immediately instead of waiting a full wave.
  Runtime runtime(sim(1, 2));
  std::vector<Future> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(timed("t", 100.0)));
  // Nothing has run yet (lazy backend): grow the cluster before waiting.
  cluster::NodeSpec extra;
  extra.name = "elastic";
  extra.cpus = 2;
  const std::size_t index = runtime.add_node(extra);
  EXPECT_EQ(index, 1u);
  runtime.barrier();
  // With 4 cores total, all 4 tasks overlap: makespan 100, not 200.
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 100.0);
  EXPECT_EQ(runtime.analyze().nodes_used(), 2u);
}

TEST(Elasticity, NewNodeSatisfiesPreviouslyImpossibleQueue) {
  // A task wider than any existing node stays queued (not failed) as long
  // as something else is in flight; growth then places it. To avoid the
  // fail-fast feasibility check, the wide task fits node sizes that exist
  // but are busy.
  Runtime runtime(sim(2, 4));
  runtime.submit(timed("filler1", 50.0));
  TaskDef wide = timed("wide", 10.0);
  wide.constraint = {.cpus = 4, .nodes = 2};  // needs both nodes
  const Future f = runtime.submit(wide);
  cluster::NodeSpec extra;
  extra.name = "elastic";
  extra.cpus = 4;
  runtime.add_node(extra);
  runtime.wait_on(f);
  // Wide task ran at t=0 using node 1 + the elastic node 2.
  EXPECT_DOUBLE_EQ(runtime.now(), 10.0);
}

TEST(Elasticity, ThreadBackendUsesGrownNode) {
  RuntimeOptions opts = sim(1, 1);
  opts.simulate = false;
  Runtime runtime(std::move(opts));
  cluster::NodeSpec extra;
  extra.name = "elastic";
  extra.cpus = 1;
  runtime.add_node(extra);
  TaskDef def;
  def.name = "where";
  def.constraint = {.cpus = 1};
  def.body = [](TaskContext& ctx) { return std::any(ctx.node()); };
  // Two tasks; with two single-core nodes, one lands on each.
  const Future a = runtime.submit(def);
  const Future b = runtime.submit(def);
  const int na = runtime.wait_on_as<int>(a);
  const int nb = runtime.wait_on_as<int>(b);
  EXPECT_NE(na, nb);
}

TEST(ChromeTrace, SerializesSpansAndInstants) {
  Runtime runtime(sim(1, 2));
  runtime.submit(timed("experiment", 5.0));
  runtime.barrier();
  const std::string text = trace::to_chrome_trace(runtime.trace().events());
  const json::Value doc = json::parse(text);
  const auto& events = doc.at("traceEvents").as_array();
  EXPECT_GE(events.size(), 3u);  // submit + schedule + run
  bool has_span = false, has_instant = false;
  for (const auto& e : events) {
    if (e.at("ph").as_string() == "X") {
      has_span = true;
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 5e6);  // 5 s in us
      EXPECT_NE(e.at("name").as_string().find("experiment"), std::string::npos);
    }
    if (e.at("ph").as_string() == "i") has_instant = true;
  }
  EXPECT_TRUE(has_span);
  EXPECT_TRUE(has_instant);
}

TEST(ChromeTrace, WritesParsableFile) {
  Runtime runtime(sim(1, 2));
  runtime.submit(timed("t", 1.0));
  runtime.barrier();
  const std::string path = "/tmp/chpo_chrome_trace.json";
  trace::write_chrome_trace(path, runtime.trace().events());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NO_THROW(json::parse(ss.str()));
  std::remove(path.c_str());
}

TEST(ChromeTrace, EmptyTraceIsValidJson) {
  EXPECT_NO_THROW(json::parse(trace::to_chrome_trace({})));
}

}  // namespace
}  // namespace chpo::rt
