// Unit tests for the JSON parser/serializer, including the paper's
// Listing 1 search-space file.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "jsonlite/json.hpp"
#include "jsonlite/record.hpp"
#include "jsonlite/wire.hpp"

namespace chpo::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e-2").as_double(), -0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntVsDoubleDistinction) {
  EXPECT_TRUE(parse("20").is_int());
  EXPECT_TRUE(parse("20.0").is_double());
  EXPECT_TRUE(parse("2e1").is_double());
  // Int coerces through as_double; double does not coerce to as_int.
  EXPECT_DOUBLE_EQ(parse("20").as_double(), 20.0);
  EXPECT_THROW(parse("20.0").as_int(), JsonError);
}

TEST(JsonParse, Listing1ConfigFile) {
  const char* listing1 = R"({
    "optimizer": ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128]
  })";
  const Value v = parse(listing1);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at("optimizer").at(0).as_string(), "Adam");
  EXPECT_EQ(v.at("num_epochs").at(2).as_int(), 100);
  EXPECT_EQ(v.at("batch_size").size(), 3u);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": {"b": [1, {"c": true}]}})");
  EXPECT_TRUE(v.at("a").at("b").at(1).at("c").as_bool());
}

TEST(JsonParse, ObjectKeyOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& obj = v.as_object();
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, Whitespace) {
  EXPECT_EQ(parse(" \n\t [ 1 , 2 ] \r\n").size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(parse("[]").size(), 0u);
  EXPECT_EQ(parse("{}").size(), 0u);
}

TEST(JsonParse, ErrorsCarryPosition) {
  try {
    parse("{\n  \"a\": ,\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), JsonError);
  EXPECT_THROW(parse("{"), JsonError);
  EXPECT_THROW(parse("[1,]"), JsonError);
  EXPECT_THROW(parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(parse("\"unterminated"), JsonError);
  EXPECT_THROW(parse("tru"), JsonError);
  EXPECT_THROW(parse("1 2"), JsonError);
  EXPECT_THROW(parse("0x10"), JsonError);
  EXPECT_THROW(parse("1."), JsonError);
  EXPECT_THROW(parse("1e"), JsonError);
  EXPECT_THROW(parse("\"a\\q\""), JsonError);
}

TEST(JsonSerialize, CompactRoundTrip) {
  const char* text = R"({"optimizer":["Adam","SGD"],"num_epochs":[20,50],"flag":true,"x":null})";
  const Value v = parse(text);
  EXPECT_EQ(serialize(v), text);
  EXPECT_EQ(parse(serialize(v)), v);
}

TEST(JsonSerialize, PrettyParsesBack) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": 1.25})");
  const std::string pretty = serialize_pretty(v);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonSerialize, EscapesControlCharacters) {
  const Value v(std::string("a\nb\x01"));
  const std::string s = serialize(v);
  EXPECT_EQ(s, "\"a\\nb\\u0001\"");
  EXPECT_EQ(parse(s), v);
}

TEST(JsonSerialize, NonFiniteBecomesNull) {
  EXPECT_EQ(serialize(Value(std::nan(""))), "null");
}

TEST(JsonValue, SetInsertAndOverwrite) {
  Value v;
  v.set("a", Value(1));
  v.set("b", Value(2));
  v.set("a", Value(9));
  EXPECT_EQ(v.at("a").as_int(), 9);
  EXPECT_EQ(v.size(), 2u);
}

TEST(JsonValue, FindAndContains) {
  const Value v = parse(R"({"k": 1})");
  EXPECT_TRUE(v.contains("k"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(JsonValue, NumericCrossTypeEquality) {
  EXPECT_EQ(parse("3"), parse("3.0"));
  EXPECT_NE(parse("3"), parse("3.5"));
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), JsonError);
  EXPECT_THROW(v.as_string(), JsonError);
  EXPECT_THROW(v.at("k"), JsonError);
  EXPECT_THROW(v.at(5), JsonError);
}

TEST(JsonFile, MissingFileThrows) {
  EXPECT_THROW(parse_file("/nonexistent/definitely_missing.json"), JsonError);
}

TEST(Wire, EncodeFrameAppendsNewline) {
  Value v;
  v.set("op", Value("ping"));
  const std::string frame = encode_frame(v);
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);  // exactly one newline
  EXPECT_EQ(parse(frame), v);                     // parse ignores trailing ws
}

TEST(Wire, DecoderReassemblesSplitChunks) {
  LineDecoder dec;
  dec.feed(R"({"op":"sub)");
  EXPECT_FALSE(dec.next().has_value());
  dec.feed("mit\"}\n{\"op\":\"list\"}\n");
  auto a = dec.next();
  ASSERT_TRUE(a.has_value() && a->ok());
  EXPECT_EQ(a->value.at("op").as_string(), "submit");
  auto b = dec.next();
  ASSERT_TRUE(b.has_value() && b->ok());
  EXPECT_EQ(b->value.at("op").as_string(), "list");
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Wire, DecoderRecoversAfterMalformedLine) {
  LineDecoder dec;
  dec.feed("{not json\n{\"op\":\"ping\"}\n");
  auto bad = dec.next();
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->ok());
  EXPECT_FALSE(bad->error.empty());
  EXPECT_EQ(bad->raw, "{not json");
  auto good = dec.next();
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(good->ok());
  EXPECT_EQ(good->value.at("op").as_string(), "ping");
}

TEST(Wire, DecoderSkipsBlankLinesAndCrlf) {
  LineDecoder dec;
  dec.feed("\n  \t\n{\"n\":1}\r\n");
  auto f = dec.next();
  ASSERT_TRUE(f.has_value() && f->ok());
  EXPECT_EQ(f->value.at("n").as_int(), 1);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Wire, DecoderBoundsLineLength) {
  LineDecoder dec;
  dec.set_max_line_bytes(16);
  // The limit trips the instant it is crossed, before any newline.
  dec.feed(std::string(17, 'x'));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->ok());
  EXPECT_TRUE(f->fatal);
  EXPECT_NE(f->error.find("exceeds"), std::string::npos);
  // The rest of the oversized line is swallowed without a second frame...
  dec.feed(std::string(100, 'x'));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_LE(dec.pending_bytes(), 16u);
  // ...and the next line after its newline decodes normally.
  dec.feed("xxx\n{\"op\":\"ping\"}\n");
  auto good = dec.next();
  ASSERT_TRUE(good.has_value());
  EXPECT_TRUE(good->ok());
  EXPECT_EQ(good->value.at("op").as_string(), "ping");
}

TEST(Wire, DecoderBoundsLineSplitAcrossChunks) {
  LineDecoder dec;
  dec.set_max_line_bytes(8);
  dec.feed("{\"op\"");  // 5 bytes, under the cap
  EXPECT_FALSE(dec.next().has_value());
  dec.feed(":\"submit\"}");  // crosses the cap mid-line
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->fatal);
  // A line exactly at the cap is fine.
  LineDecoder ok;
  ok.set_max_line_bytes(8);
  ok.feed("{\"n\":1}\n");  // 7 bytes + newline
  auto g = ok.next();
  ASSERT_TRUE(g.has_value() && g->ok());
  EXPECT_EQ(g->value.at("n").as_int(), 1);
}

TEST(Wire, RoundTripThroughDecoder) {
  Value v;
  v.set("op", Value("submit"));
  v.set("budget", Value(8));
  v.set("weight", Value(2.5));
  LineDecoder dec;
  const std::string frame = encode_frame(v);
  for (char c : frame) dec.feed(std::string_view(&c, 1));  // worst-case framing
  auto f = dec.next();
  ASSERT_TRUE(f.has_value() && f->ok());
  EXPECT_EQ(f->value, v);
}

Value record(int n) {
  Value v;
  v.set("rec", Value("test"));
  v.set("n", Value(n));
  return v;
}

std::string temp_record_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("chpo_record_test_") + name + ".ndjson"))
      .string();
}

TEST(Record, EncodeDecodeRoundTrip) {
  const Value v = record(7);
  const std::string line = encode_record(v);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  // "<8 hex> <payload>": fixed-width checksum, single separating space.
  EXPECT_EQ(line[8], ' ');
  const RecordDecode d = decode_record(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(d.ok()) << d.error;
  EXPECT_EQ(d.value, v);
}

TEST(Record, DecodeRejectsCorruption) {
  std::string line = encode_record(record(1));
  line.pop_back();  // strip '\n'
  // Flip one payload byte: CRC must catch it.
  std::string flipped = line;
  flipped[flipped.size() - 2] ^= 0x01;
  EXPECT_FALSE(decode_record(flipped).ok());
  // Damage the checksum itself.
  std::string bad_crc = line;
  bad_crc[0] = bad_crc[0] == 'f' ? '0' : 'f';
  EXPECT_FALSE(decode_record(bad_crc).ok());
  // Truncate mid-payload (a torn write).
  EXPECT_FALSE(decode_record(std::string_view(line).substr(0, line.size() / 2)).ok());
  // Garbage shorter than the checksum header.
  EXPECT_FALSE(decode_record("zzz").ok());
  EXPECT_FALSE(decode_record("").ok());
}

TEST(Record, ReadRecordsStopsAtTornTail) {
  const std::string path = temp_record_path("torn");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << encode_record(record(1)) << encode_record(record(2));
    const std::string torn = encode_record(record(3));
    out.write(torn.data(), static_cast<std::streamsize>(torn.size() / 2));  // torn write
  }
  const RecordReplay replay = read_records(path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].at("n").as_int(), 1);
  EXPECT_EQ(replay.records[1].at("n").as_int(), 2);
  EXPECT_TRUE(replay.torn());
  EXPECT_GT(replay.torn_bytes, 0u);
  EXPECT_FALSE(replay.torn_error.empty());
  std::filesystem::remove(path);
}

TEST(Record, ReadRecordsIntactFileAndMissingFile) {
  const std::string path = temp_record_path("intact");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 5; ++i) out << encode_record(record(i));
  }
  const RecordReplay replay = read_records(path);
  EXPECT_EQ(replay.records.size(), 5u);
  EXPECT_FALSE(replay.torn());
  std::filesystem::remove(path);

  const RecordReplay missing = read_records(path);
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.torn());
}

TEST(Record, CorruptRecordMidFileDiscardsEverythingAfter) {
  const std::string path = temp_record_path("midfile");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << encode_record(record(1));
    std::string bad = encode_record(record(2));
    bad[10] ^= 0x01;  // corrupt the payload of the middle record
    out << bad;
    out << encode_record(record(3));
  }
  // Append-only logs trust nothing after the first bad record: the tail
  // could be a resurrected older write landing past the corruption.
  const RecordReplay replay = read_records(path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].at("n").as_int(), 1);
  EXPECT_TRUE(replay.torn());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace chpo::json
