// Elastic membership + lineage recovery: nodes die and come back, data
// whose only replica died with a node is recomputed by re-executing its
// producer chain (Spark-style lineage), flaky nodes are quarantined and
// re-admitted through probation. Covered on both backends.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "runtime/node_health.hpp"
#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim_no_pfs(std::size_t nodes, unsigned cpus = 1) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "n";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.cluster.has_parallel_fs = false;  // outputs live on the producing node
  opts.simulate = true;
  return opts;
}

TaskDef timed(std::string name, double seconds) {
  TaskDef def;
  def.name = std::move(name);
  def.constraint = {.cpus = 1};
  def.body = [](TaskContext&) { return std::any(1); };
  def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
  return def;
}

// ------------------------------------------------------- chaos timelines

TEST(NodeChaos, MaterializedScheduleIsDeterministicAndPaired) {
  FaultInjector a(7), b(7);
  const NodeChaosPolicy chaos{.mttf_seconds = 100.0, .mttr_seconds = 30.0,
                              .horizon_seconds = 1000.0};
  a.set_node_chaos(chaos);
  b.set_node_chaos(chaos);
  a.materialize_node_schedule(4);
  a.materialize_node_schedule(4);  // idempotent
  b.materialize_node_schedule(4);
  ASSERT_FALSE(a.node_failures().empty());
  ASSERT_EQ(a.node_failures().size(), b.node_failures().size());
  for (std::size_t i = 0; i < a.node_failures().size(); ++i) {
    EXPECT_EQ(a.node_failures()[i].node, b.node_failures()[i].node);
    EXPECT_DOUBLE_EQ(a.node_failures()[i].time, b.node_failures()[i].time);
    EXPECT_LE(a.node_failures()[i].time, chaos.horizon_seconds);
  }
  // Transient policy: every failure has a later rejoin for the same node.
  EXPECT_EQ(a.node_recoveries().size(), a.node_failures().size());
}

TEST(NodeChaos, ZeroMttrMakesFailuresPermanent) {
  FaultInjector injector(11);
  injector.set_node_chaos({.mttf_seconds = 50.0, .mttr_seconds = 0.0, .horizon_seconds = 500.0});
  injector.materialize_node_schedule(3);
  EXPECT_TRUE(injector.node_recoveries().empty());
  // The never-all-down guard keeps at least one node alive: with permanent
  // failures at most n-1 nodes may die.
  EXPECT_LE(injector.node_failures().size(), 2u);
}

// ----------------------------------------------------- lineage recovery

TEST(LineageRecovery, SimSoleReplicaLossRecomputesProducer) {
  RuntimeOptions opts = sim_no_pfs(2);
  Runtime runtime(std::move(opts));
  TaskDef producer = timed("producer", 5.0);
  producer.body = [](TaskContext& ctx) { return std::any(100 + ctx.attempt()); };
  const Future f = runtime.submit(producer);
  runtime.barrier();
  const int victim = runtime.graph().task(f.producer).last_node;
  ASSERT_GE(victim, 0);

  runtime.kill_node(static_cast<std::size_t>(victim));
  // The committed output died with its only replica; wait_on demands the
  // lineage and the producer re-executes on the surviving node. The replay
  // uses the succeeded attempt's identity, so an attempt-dependent body
  // still produces the failure-free value.
  EXPECT_EQ(runtime.wait_on_as<int>(f), 101);
  EXPECT_EQ(runtime.lineage_recoveries(), 1u);
  EXPECT_EQ(runtime.unrecoverable_count(), 0u);
  EXPECT_EQ(runtime.lineage_violations(), 0u);
  EXPECT_NE(runtime.graph().task(f.producer).last_node, victim);

  int data_lost = 0, recomputes = 0, node_down = 0;
  for (const auto& e : runtime.trace().events()) {
    data_lost += e.kind == trace::EventKind::DataLost;
    recomputes += e.kind == trace::EventKind::LineageRecompute;
    node_down += e.kind == trace::EventKind::NodeDown;
  }
  EXPECT_EQ(node_down, 1);
  EXPECT_GE(data_lost, 1);
  EXPECT_EQ(recomputes, 1);
}

TEST(LineageRecovery, WalksMultiLevelChainInProducerOrder) {
  // a -> b -> c all committed on the dying node; reading c's output must
  // re-execute a, then b, then c.
  RuntimeOptions opts = sim_no_pfs(2);
  // Locality keeps the chain on one node (outputs live where the producer
  // ran and staging costs bytes), so the kill orphans the whole chain.
  opts.scheduler = "locality";
  Runtime runtime(std::move(opts));
  TaskDef root = timed("a", 2.0);
  root.body = [](TaskContext&) { return std::any(7); };
  const Future a = runtime.submit(root);
  TaskDef mid = timed("b", 2.0);
  mid.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) * 2); };
  const Future b = runtime.submit(mid, {{a.data, Direction::In}});
  TaskDef leaf = timed("c", 2.0);
  leaf.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) + 1); };
  const Future c = runtime.submit(leaf, {{b.data, Direction::In}});
  runtime.barrier();
  const int chain_node = runtime.graph().task(c.producer).last_node;
  ASSERT_EQ(runtime.graph().task(a.producer).last_node, chain_node);
  ASSERT_EQ(runtime.graph().task(b.producer).last_node, chain_node);

  runtime.kill_node(static_cast<std::size_t>(chain_node));
  EXPECT_EQ(runtime.wait_on_as<int>(c), 15);
  EXPECT_EQ(runtime.lineage_recoveries(), 3u);
  EXPECT_EQ(runtime.lineage_violations(), 0u);
}

TEST(LineageRecovery, DownstreamTaskBlocksOnRecomputedVersion) {
  // The consumer is submitted *after* the data is lost: its dispatch gates
  // on the recovered version instead of failing.
  RuntimeOptions opts = sim_no_pfs(2);
  Runtime runtime(std::move(opts));
  TaskDef producer = timed("producer", 5.0);
  producer.body = [](TaskContext&) { return std::any(40); };
  const Future f = runtime.submit(producer);
  runtime.barrier();
  const int victim = runtime.graph().task(f.producer).last_node;
  runtime.kill_node(static_cast<std::size_t>(victim));

  TaskDef consumer = timed("consumer", 5.0);
  consumer.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) + 2); };
  const Future g = runtime.submit(consumer, {{f.data, Direction::In}});
  EXPECT_EQ(runtime.wait_on_as<int>(g), 42);
  EXPECT_EQ(runtime.lineage_recoveries(), 1u);
  EXPECT_EQ(runtime.lineage_violations(), 0u);
}

TEST(LineageRecovery, MatchesFailureFreeRunExactly) {
  // The acceptance bar: a run that loses a node holding sole replicas
  // mid-DAG completes with the same values as a run with no faults at all.
  auto run_dag = [](bool with_kill) {
    RuntimeOptions opts = sim_no_pfs(3, 2);
    opts.scheduler = "locality";
    Runtime runtime(std::move(opts));
    std::vector<Future> layer1;
    for (int i = 0; i < 6; ++i) {
      TaskDef def = timed("l1", 4.0);
      def.body = [i](TaskContext& ctx) { return std::any(10 * i + ctx.attempt()); };
      layer1.push_back(runtime.submit(def));
    }
    runtime.barrier();
    if (with_kill) runtime.kill_node(0);
    std::vector<Future> layer2;
    for (int i = 0; i < 6; ++i) {
      TaskDef def = timed("l2", 4.0);
      def.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) * 3); };
      layer2.push_back(runtime.submit(def, {{layer1[std::size_t(i)].data, Direction::In}}));
    }
    std::vector<int> values;
    for (auto& f : layer2) values.push_back(runtime.wait_on_as<int>(f));
    EXPECT_EQ(runtime.lineage_violations(), 0u);
    return values;
  };
  const std::vector<int> clean = run_dag(false);
  const std::vector<int> chaotic = run_dag(true);
  EXPECT_EQ(clean, chaotic);
}

TEST(LineageRecovery, UnrecoverableWhenProducerChainCannotRerun) {
  // One-node no-PFS cluster: when the only node dies permanently there is
  // nowhere to replay the lineage — the waiter gets a TaskFailedError, not
  // a hang.
  RuntimeOptions opts = sim_no_pfs(2);
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(timed("orphan", 5.0));
  runtime.barrier();
  runtime.kill_node(0);
  runtime.kill_node(1);
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
  EXPECT_GE(runtime.unrecoverable_count(), 1u);
}

TEST(LineageRecovery, ThreadBackendRecoversToo) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(2, node);
  opts.cluster.has_parallel_fs = false;
  Runtime runtime(std::move(opts));
  TaskDef producer;
  producer.name = "producer";
  producer.body = [](TaskContext& ctx) { return std::any(200 + ctx.attempt()); };
  const Future f = runtime.submit(producer);
  runtime.barrier();
  const int victim = runtime.graph().task(f.producer).last_node;
  ASSERT_GE(victim, 0);
  runtime.kill_node(static_cast<std::size_t>(victim));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 201);
  EXPECT_EQ(runtime.lineage_recoveries(), 1u);
  EXPECT_EQ(runtime.lineage_violations(), 0u);
}

// -------------------------------------------------- elastic membership

TEST(Membership, NodeComesBackAtExactVirtualTimeAndIsUsedAgain) {
  // 1-cpu 2-node cluster; node 0 is out for [10, 30). Tasks keep flowing;
  // after the rejoin node 0 must receive placements again (on probation
  // first — health starts it with a trickle, then re-admits).
  RuntimeOptions opts = sim_no_pfs(2);
  opts.injector.schedule_node_failure(0, 10.0);
  opts.injector.schedule_node_recovery(0, 30.0);
  Runtime runtime(std::move(opts));
  std::vector<Future> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(runtime.submit(timed("work", 6.0)));
  runtime.barrier();
  for (auto& f : futures) EXPECT_EQ(runtime.wait_on_as<int>(f), 1);

  int node_down = 0, node_up = 0;
  bool reused_after_rejoin = false;
  for (const auto& e : runtime.trace().events()) {
    node_down += e.kind == trace::EventKind::NodeDown;
    node_up += e.kind == trace::EventKind::NodeUp;
    if (e.kind == trace::EventKind::TaskRun && e.node == 0 && e.t_start >= 30.0)
      reused_after_rejoin = true;
  }
  EXPECT_EQ(node_down, 1);
  EXPECT_EQ(node_up, 1);
  EXPECT_TRUE(reused_after_rejoin) << "revived node never received a placement";
  EXPECT_EQ(runtime.lineage_violations(), 0u);
  // With 6 s tasks on one surviving 1-cpu node during the outage, the
  // rejoin must shorten the tail: 12 x 6 s on two nodes with a 20 s outage
  // of one of them fits well under the 72 s single-node bound.
  EXPECT_LT(runtime.analyze().makespan(), 72.0);
}

TEST(Membership, ThreadBackendKillAndReviveInjectable) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 1;
  opts.cluster = cluster::homogeneous(2, node);
  Runtime runtime(std::move(opts));
  runtime.kill_node(1);
  EXPECT_TRUE(runtime.resources().node_down(1));
  runtime.revive_node(1);
  EXPECT_FALSE(runtime.resources().node_down(1));
  EXPECT_EQ(runtime.node_health().state(1), HealthState::Probation);

  // Work still lands on both the healthy node and (via the probation
  // trickle) the revived one.
  std::vector<Future> futures;
  for (int i = 0; i < 8; ++i) {
    TaskDef def;
    def.name = "after_revive";
    def.body = [](TaskContext& ctx) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return std::any(ctx.node());
    };
    futures.push_back(runtime.submit(def));
  }
  bool used_revived = false;
  for (auto& f : futures) used_revived |= runtime.wait_on_as<int>(f) == 1;
  EXPECT_TRUE(used_revived);
  EXPECT_EQ(runtime.lineage_violations(), 0u);
}

TEST(Membership, UnknownNodeThrows) {
  RuntimeOptions opts = sim_no_pfs(2);
  Runtime runtime(std::move(opts));
  EXPECT_THROW(runtime.kill_node(9), std::out_of_range);
  EXPECT_THROW(runtime.revive_node(9), std::out_of_range);
}

// ------------------------------------------------ health and quarantine

TEST(NodeHealthTracker, QuarantineAndProbationLifecycle) {
  NodeHealthPolicy policy;
  policy.alpha = 0.5;
  policy.quarantine_threshold = 0.6;
  policy.min_observations = 3;
  policy.probation_successes = 2;
  NodeHealth health(policy, 2);

  EXPECT_EQ(health.state(0), HealthState::Healthy);
  EXPECT_FALSE(health.record_failure(0));  // obs 1: below min_observations
  EXPECT_FALSE(health.record_failure(0));  // obs 2
  EXPECT_TRUE(health.record_failure(0));   // obs 3, score 0.875: quarantined
  EXPECT_EQ(health.state(0), HealthState::Quarantined);
  EXPECT_EQ(health.state(1), HealthState::Healthy);

  // Probation cap: one task at a time while quarantined.
  EXPECT_TRUE(health.allow_placement(0));
  health.on_placement(0);
  EXPECT_FALSE(health.allow_placement(0));
  health.on_conclusion(0);
  EXPECT_TRUE(health.allow_placement(0));

  // Two consecutive successes with a decayed score re-admit.
  EXPECT_FALSE(health.record_success(0));  // score 0.4375, streak 1
  EXPECT_TRUE(health.record_success(0));   // score 0.22, streak 2: healthy
  EXPECT_EQ(health.state(0), HealthState::Healthy);

  // A rejoin always lands on probation, trusted only incrementally.
  health.on_node_up(0);
  EXPECT_EQ(health.state(0), HealthState::Probation);
  EXPECT_FALSE(health.record_success(0));
  EXPECT_TRUE(health.record_success(0));
  EXPECT_EQ(health.state(0), HealthState::Healthy);
}

TEST(NodeHealthTracker, FailureStreakResetsProbationProgress) {
  NodeHealthPolicy policy;
  policy.alpha = 0.5;
  policy.min_observations = 1;
  policy.quarantine_threshold = 0.4;
  NodeHealth health(policy, 1);
  EXPECT_TRUE(health.record_failure(0));
  EXPECT_FALSE(health.record_success(0));  // streak 1
  EXPECT_FALSE(health.record_failure(0));  // streak back to 0, still bad
  EXPECT_FALSE(health.record_success(0));  // streak 1 again
  EXPECT_EQ(health.state(0), HealthState::Quarantined);
}

TEST(Quarantine, FlakyNodeStopsReceivingPlacements) {
  // Node 0 fails every body that lands on it; the EWMA crosses the
  // threshold, the node is quarantined (traced), and the remaining work
  // runs on node 1 except the probation trickle.
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 1;
  opts.cluster = cluster::homogeneous(2, node);
  opts.simulate = true;
  opts.fault_policy.max_attempts = 4;
  opts.node_health.min_observations = 2;
  opts.node_health.alpha = 0.6;
  Runtime runtime(std::move(opts));
  std::vector<Future> futures;
  for (int i = 0; i < 10; ++i) {
    TaskDef def = timed("flaky_on_0", 3.0);
    def.body = [](TaskContext& ctx) -> std::any {
      if (ctx.node() == 0) throw std::runtime_error("bad hardware");
      return std::any(ctx.node());
    };
    futures.push_back(runtime.submit(def));
  }
  for (auto& f : futures) EXPECT_EQ(runtime.wait_on_as<int>(f), 1);
  EXPECT_EQ(runtime.node_health().state(0), HealthState::Quarantined);
  EXPECT_EQ(runtime.node_health().state(1), HealthState::Healthy);
  bool quarantined_traced = false;
  for (const auto& e : runtime.trace().events())
    quarantined_traced |= e.kind == trace::EventKind::Quarantine;
  EXPECT_TRUE(quarantined_traced);
}

TEST(Quarantine, AllNodesQuarantinedStillMakesProgress) {
  // Anti-deadlock fallback: when health gating would reject every live
  // node, the schedulers ignore it rather than starve the queue.
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(1, node);
  opts.simulate = true;
  opts.fault_policy.max_attempts = 6;
  opts.node_health.min_observations = 1;
  opts.node_health.alpha = 1.0;  // one failure pins the score to 1
  Runtime runtime(std::move(opts));
  TaskDef def = timed("fails_once", 2.0);
  def.body = [](TaskContext& ctx) -> std::any {
    if (ctx.attempt() < 3) throw std::runtime_error("transient");
    return std::any(9);
  };
  const Future f = runtime.submit(def);
  std::vector<Future> rest;
  for (int i = 0; i < 4; ++i) rest.push_back(runtime.submit(timed("filler", 2.0)));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 9);
  for (auto& g : rest) EXPECT_EQ(runtime.wait_on_as<int>(g), 1);
}

}  // namespace
}  // namespace chpo::rt
