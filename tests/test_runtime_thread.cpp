// Integration tests for the threaded backend through the Runtime facade —
// the PyCOMPSs programming model executed for real.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions small_cluster(std::size_t nodes = 1, unsigned cpus = 4) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "test";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  return opts;
}

TaskDef fn(std::string name, TaskBody body, Constraint c = {.cpus = 1}) {
  TaskDef def;
  def.name = std::move(name);
  def.constraint = c;
  def.body = std::move(body);
  return def;
}

TEST(ThreadRuntime, WaitOnReturnsBodyValue) {
  Runtime runtime(small_cluster());
  const Future f = runtime.submit(fn("answer", [](TaskContext&) { return std::any(42); }));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 42);
}

TEST(ThreadRuntime, ManyIndependentTasksAllComplete) {
  Runtime runtime(small_cluster(2, 4));
  std::vector<Future> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(
        runtime.submit(fn("sq", [i](TaskContext&) { return std::any(i * i); })));
  for (int i = 0; i < 40; ++i) EXPECT_EQ(runtime.wait_on_as<int>(futures[static_cast<std::size_t>(i)]), i * i);
}

TEST(ThreadRuntime, DependencyChainOrdersExecution) {
  Runtime runtime(small_cluster(1, 4));
  std::atomic<int> sequence{0};
  const Future a = runtime.submit(fn("first", [&](TaskContext&) {
    sequence = 1;
    return std::any(10);
  }));
  const Future b = runtime.submit(fn("second",
                                     [&](TaskContext& ctx) {
                                       EXPECT_EQ(sequence.load(), 1);
                                       const int upstream = ctx.read<int>(0);
                                       return std::any(upstream + 5);
                                     }),
                                  {{a.data, Direction::In}});
  EXPECT_EQ(runtime.wait_on_as<int>(b), 15);
}

TEST(ThreadRuntime, SharedDataVisibleToTasks) {
  Runtime runtime(small_cluster());
  const DataId cfg = runtime.share(std::string("Adam"), 64, "config");
  const Future f = runtime.submit(fn("read_cfg",
                                     [](TaskContext& ctx) {
                                       return std::any(ctx.read<std::string>(0) + "!");
                                     }),
                                  {{cfg, Direction::In}});
  EXPECT_EQ(runtime.wait_on_as<std::string>(f), "Adam!");
}

TEST(ThreadRuntime, InOutMutationFlowsThroughVersions) {
  Runtime runtime(small_cluster());
  const DataId acc = runtime.share(0, 64, "accumulator");
  for (int i = 0; i < 5; ++i) {
    runtime.submit(fn("inc",
                      [](TaskContext& ctx) {
                        ctx.write(0, ctx.read<int>(0) + 1);
                        return std::any();
                      }),
                   {{acc, Direction::InOut}});
  }
  runtime.barrier();
  EXPECT_EQ(runtime.peek<int>(acc), 5);
}

TEST(ThreadRuntime, InOutWithoutWriteCarriesValueForward) {
  Runtime runtime(small_cluster());
  const DataId d = runtime.share(std::string("keep"), 64);
  runtime.submit(fn("noop", [](TaskContext&) { return std::any(); }), {{d, Direction::InOut}});
  runtime.barrier();
  EXPECT_EQ(runtime.peek<std::string>(d), "keep");
}

TEST(ThreadRuntime, ThreadBudgetMatchesConstraint) {
  Runtime runtime(small_cluster(1, 4));
  const Future f = runtime.submit(fn(
      "budget", [](TaskContext& ctx) { return std::any(ctx.thread_budget()); },
      Constraint{.cpus = 3}));
  EXPECT_EQ(runtime.wait_on_as<unsigned>(f), 3u);
}

TEST(ThreadRuntime, AffinityNeverOversubscribed) {
  // 4 cores, 8 two-core tasks: at most 2 run concurrently.
  Runtime runtime(small_cluster(1, 4));
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    runtime.submit(fn(
        "busy",
        [&](TaskContext&) {
          const int now = running.fetch_add(1) + 1;
          int expected = peak.load();
          while (now > expected && !peak.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          running.fetch_sub(1);
          return std::any();
        },
        Constraint{.cpus = 2}));
  }
  runtime.barrier();
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadRuntime, BodyExceptionRetriesThenFails) {
  RuntimeOptions opts = small_cluster(2, 2);
  opts.fault_policy.max_attempts = 3;
  Runtime runtime(std::move(opts));
  std::atomic<int> attempts{0};
  const Future f = runtime.submit(fn("always_fails", [&](TaskContext&) -> std::any {
    attempts.fetch_add(1);
    throw std::runtime_error("boom");
  }));
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
  EXPECT_EQ(attempts.load(), 3);  // initial + same-node retry + other-node
}

TEST(ThreadRuntime, TransientFailureRecovers) {
  Runtime runtime(small_cluster(1, 2));
  std::atomic<int> attempts{0};
  const Future f = runtime.submit(fn("flaky", [&](TaskContext&) -> std::any {
    if (attempts.fetch_add(1) == 0) throw std::runtime_error("transient");
    return std::any(std::string("recovered"));
  }));
  EXPECT_EQ(runtime.wait_on_as<std::string>(f), "recovered");
  EXPECT_EQ(attempts.load(), 2);
}

TEST(ThreadRuntime, InjectedFailureUsesRetryPolicy) {
  RuntimeOptions opts = small_cluster(2, 2);
  opts.injector.force_task_failures(0, 2);  // first two attempts fail
  Runtime runtime(std::move(opts));
  const Future f = runtime.submit(fn("injected", [](TaskContext& ctx) {
    return std::any(ctx.attempt());
  }));
  EXPECT_EQ(runtime.wait_on_as<int>(f), 3);  // succeeded on the third attempt
  const auto analysis = runtime.analyze();
  EXPECT_EQ(analysis.failure_count(), 2u);
  EXPECT_EQ(analysis.retry_count(), 2u);
}

TEST(ThreadRuntime, FailedPredecessorCancelsDependents) {
  RuntimeOptions opts = small_cluster();
  opts.fault_policy.max_attempts = 1;
  Runtime runtime(std::move(opts));
  std::atomic<bool> dependent_ran{false};
  const Future bad =
      runtime.submit(fn("bad", [](TaskContext&) -> std::any { throw std::runtime_error("x"); }));
  const Future child = runtime.submit(fn("child",
                                         [&](TaskContext&) {
                                           dependent_ran = true;
                                           return std::any(1);
                                         }),
                                      {{bad.data, Direction::In}});
  const Future unrelated = runtime.submit(fn("unrelated", [](TaskContext&) { return std::any(7); }));
  EXPECT_THROW(runtime.wait_on(child), TaskFailedError);
  EXPECT_FALSE(dependent_ran.load());
  // "The failure of a task does not affect the other tasks" (§4).
  EXPECT_EQ(runtime.wait_on_as<int>(unrelated), 7);
}

TEST(ThreadRuntime, UnsatisfiableConstraintFailsFast) {
  Runtime runtime(small_cluster(1, 4));
  const Future f = runtime.submit(
      fn("too_big", [](TaskContext&) { return std::any(1); }, Constraint{.cpus = 100}));
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
}

TEST(ThreadRuntime, TraceRecordsSubmitScheduleRun) {
  Runtime runtime(small_cluster());
  runtime.submit(fn("traced", [](TaskContext&) { return std::any(); }));
  runtime.barrier();
  std::set<trace::EventKind> kinds;
  for (const auto& e : runtime.trace().events()) kinds.insert(e.kind);
  EXPECT_TRUE(kinds.contains(trace::EventKind::TaskSubmit));
  EXPECT_TRUE(kinds.contains(trace::EventKind::TaskSchedule));
  EXPECT_TRUE(kinds.contains(trace::EventKind::TaskRun));
}

TEST(ThreadRuntime, TracingOffRecordsNothing) {
  RuntimeOptions opts = small_cluster();
  opts.tracing = false;
  Runtime runtime(std::move(opts));
  runtime.submit(fn("untraced", [](TaskContext&) { return std::any(); }));
  runtime.barrier();
  EXPECT_EQ(runtime.trace().size(), 0u);
}

TEST(ThreadRuntime, PerAttemptRngIsDeterministic) {
  const auto run_once = [] {
    Runtime runtime(small_cluster());
    const Future f = runtime.submit(
        fn("rng", [](TaskContext& ctx) { return std::any(ctx.rng().next_u64()); }));
    return runtime.wait_on_as<std::uint64_t>(f);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ThreadRuntime, ConsumerSubmittedAfterProducerFinished) {
  // Regression: a task submitted after its predecessor already completed
  // must still become ready (the paper's late plot task).
  Runtime runtime(small_cluster());
  const Future produced = runtime.submit(fn("produce", [](TaskContext&) { return std::any(21); }));
  EXPECT_EQ(runtime.wait_on_as<int>(produced), 21);  // producer fully done
  const Future consumed = runtime.submit(fn("consume",
                                            [](TaskContext& ctx) {
                                              return std::any(ctx.read<int>(0) * 2);
                                            }),
                                         {{produced.data, Direction::In}});
  EXPECT_EQ(runtime.wait_on_as<int>(consumed), 42);
}

TEST(ThreadRuntime, ConsumerSubmittedAfterProducerFailed) {
  RuntimeOptions opts = small_cluster();
  opts.fault_policy.max_attempts = 1;
  Runtime runtime(std::move(opts));
  const Future bad =
      runtime.submit(fn("bad", [](TaskContext&) -> std::any { throw std::runtime_error("x"); }));
  EXPECT_THROW(runtime.wait_on(bad), TaskFailedError);
  const Future late = runtime.submit(fn("late", [](TaskContext&) { return std::any(1); }),
                                     {{bad.data, Direction::In}});
  EXPECT_THROW(runtime.wait_on(late), TaskFailedError);  // doomed at submission
}

TEST(ThreadRuntime, DestructorDrainsOutstandingTasks) {
  std::atomic<int> completed{0};
  {
    Runtime runtime(small_cluster(1, 2));
    for (int i = 0; i < 6; ++i)
      runtime.submit(fn("drained", [&](TaskContext&) {
        completed.fetch_add(1);
        return std::any();
      }));
    // No barrier: destructor must finish them.
  }
  EXPECT_EQ(completed.load(), 6);
}

TEST(ThreadRuntime, EmptyClusterRejected) {
  RuntimeOptions opts;
  EXPECT_THROW(Runtime{std::move(opts)}, std::invalid_argument);
}

TEST(ThreadRuntime, WaitOnEmptyFutureThrows) {
  Runtime runtime(small_cluster());
  Future empty;
  EXPECT_THROW(runtime.wait_on(empty), std::invalid_argument);
}

TEST(ThreadRuntime, WritingInParameterThrows) {
  Runtime runtime(small_cluster());
  const DataId d = runtime.share(1);
  const Future f = runtime.submit(fn("bad_write",
                                     [](TaskContext& ctx) -> std::any {
                                       ctx.write(0, 2);  // IN param: logic error
                                       return {};
                                     }),
                                  {{d, Direction::In}});
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);  // surfaces as task failure
}

}  // namespace
}  // namespace chpo::rt
