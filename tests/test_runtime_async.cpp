// Completion-driven runtime API: wait_any, wait_all_for, cancel, and
// per-submit completion callbacks, on both backends.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim_cluster(std::size_t nodes = 1, unsigned cpus = 4) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "sim";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = true;
  return opts;
}

RuntimeOptions thread_cluster(unsigned cpus = 4) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "t";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(1, node);
  return opts;
}

TaskDef timed(std::string name, double seconds, Constraint c = {.cpus = 1}) {
  TaskDef def;
  def.name = std::move(name);
  def.constraint = c;
  def.body = [](TaskContext&) { return std::any(1); };
  def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
  return def;
}

TEST(WaitAny, SimReturnsCompletionsOutOfSubmissionOrder) {
  // Skewed durations, submitted longest-first: wait_any must hand them
  // back shortest-first (completion order), not submission order.
  Runtime runtime(sim_cluster(1, 4));
  std::vector<Future> futures;
  for (const double seconds : {40.0, 30.0, 20.0, 10.0})
    futures.push_back(runtime.submit(timed("skew", seconds)));

  std::vector<TaskId> completion_order;
  std::vector<Future> remaining = futures;
  while (!remaining.empty()) {
    const Future done = runtime.wait_any(remaining);
    completion_order.push_back(done.producer);
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](const Future& f) { return f.producer == done.producer; }),
                    remaining.end());
  }
  // Reverse submission order: the 10s task (submitted last) finishes first.
  const std::vector<TaskId> expected{futures[3].producer, futures[2].producer,
                                     futures[1].producer, futures[0].producer};
  EXPECT_EQ(completion_order, expected);
  EXPECT_DOUBLE_EQ(runtime.now(), 40.0);

  // The sync pattern is visible in the trace.
  std::size_t wait_any_events = 0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::WaitAny) ++wait_any_events;
  EXPECT_EQ(wait_any_events, 4u);
}

TEST(WaitAny, SimStopsTheClockAtFirstCompletion) {
  Runtime runtime(sim_cluster(1, 4));
  const Future slow = runtime.submit(timed("slow", 100.0));
  const Future fast = runtime.submit(timed("fast", 5.0));
  const Future first = runtime.wait_any(std::vector<Future>{slow, fast});
  EXPECT_EQ(first.producer, fast.producer);
  EXPECT_DOUBLE_EQ(runtime.now(), 5.0);  // did not wait for the 100s task
}

TEST(WaitAny, ThreadBackendReturnsFastTaskFirst) {
  Runtime runtime(thread_cluster());
  TaskDef slow;
  slow.name = "slow";
  slow.body = [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return std::any(1);
  };
  TaskDef fast;
  fast.name = "fast";
  fast.body = [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return std::any(2);
  };
  const Future f_slow = runtime.submit(slow);
  const Future f_fast = runtime.submit(fast);
  const Future first = runtime.wait_any(std::vector<Future>{f_slow, f_fast});
  EXPECT_EQ(first.producer, f_fast.producer);
  EXPECT_EQ(runtime.wait_on_as<int>(first), 2);
}

TEST(WaitAny, AlreadyTerminalPicksFirstFinisher) {
  Runtime runtime(sim_cluster(1, 4));
  const Future a = runtime.submit(timed("a", 30.0));
  const Future b = runtime.submit(timed("b", 10.0));
  runtime.barrier();  // both terminal before anyone waits
  const Future first = runtime.wait_any(std::vector<Future>{a, b});
  EXPECT_EQ(first.producer, b.producer);  // b completed first
}

TEST(WaitAny, FailedTaskCountsAsCompletion) {
  RuntimeOptions opts = sim_cluster(1, 2);
  opts.fault_policy.max_attempts = 1;
  Runtime runtime(std::move(opts));
  TaskDef boom = timed("boom", 1.0);
  boom.body = [](TaskContext&) -> std::any { throw std::runtime_error("kaput"); };
  const Future ok = runtime.submit(timed("ok", 50.0));
  const Future bad = runtime.submit(boom);
  const Future first = runtime.wait_any(std::vector<Future>{ok, bad});
  EXPECT_EQ(first.producer, bad.producer);  // wait_any itself does not throw
  EXPECT_THROW(runtime.wait_on(first), TaskFailedError);
}

TEST(WaitAny, RejectsEmptyInput) {
  Runtime runtime(sim_cluster());
  EXPECT_THROW(runtime.wait_any(std::vector<Future>{}), std::invalid_argument);
  EXPECT_THROW(runtime.wait_any(std::vector<Future>{Future{}}), std::invalid_argument);
}

TEST(Cancel, PendingTaskCancelsWithoutTouchingResources) {
  // One core: `running` occupies it, `pending` queues behind it, and
  // `dependent` consumes pending's future.
  Runtime runtime(sim_cluster(1, 1));
  const Future running = runtime.submit(timed("running", 20.0));
  const Future pending = runtime.submit(timed("pending", 5.0));
  const Future dependent =
      runtime.submit(timed("dependent", 5.0), {{pending.data, Direction::In}});

  // Make sure `running` actually started (clock moves, nothing finished).
  EXPECT_FALSE(runtime.wait_all_for(1.0));

  EXPECT_TRUE(runtime.cancel(pending));
  EXPECT_FALSE(runtime.cancel(pending));  // already terminal now
  runtime.barrier();

  // The cancelled task and its dependent never ran; the running task was
  // untouched and the cluster finished at its duration — no resources were
  // held or leaked by the cancelled pair.
  EXPECT_EQ(runtime.graph().task(pending.producer).state, TaskState::Cancelled);
  EXPECT_EQ(runtime.graph().task(dependent.producer).state, TaskState::Cancelled);
  EXPECT_EQ(runtime.graph().task(running.producer).state, TaskState::Done);
  EXPECT_DOUBLE_EQ(runtime.now(), 20.0);
  EXPECT_THROW(runtime.wait_on(pending), TaskFailedError);
  EXPECT_THROW(runtime.wait_on(dependent), TaskFailedError);

  // The freed slot is immediately usable by new work.
  const Future after = runtime.submit(timed("after", 3.0));
  EXPECT_EQ(runtime.wait_on_as<int>(after), 1);
}

TEST(Cancel, RunningTaskIsAbandonedOnFinish) {
  Runtime runtime(sim_cluster(1, 1));
  const Future f = runtime.submit(timed("doomed", 50.0));
  EXPECT_FALSE(runtime.wait_all_for(10.0));  // task is now mid-attempt
  EXPECT_TRUE(runtime.cancel(f));
  runtime.barrier();
  // The attempt ran to its end (resources held until then) but the result
  // was discarded and the task ended Cancelled, not Done.
  EXPECT_EQ(runtime.graph().task(f.producer).state, TaskState::Cancelled);
  EXPECT_DOUBLE_EQ(runtime.now(), 50.0);
  EXPECT_THROW(runtime.wait_on(f), TaskFailedError);
}

TEST(Cancel, SecondCancelOfRunningTaskReturnsFalse) {
  Runtime runtime(sim_cluster(1, 1));
  const Future f = runtime.submit(timed("doomed", 50.0));
  EXPECT_FALSE(runtime.wait_all_for(10.0));  // attempt in flight
  EXPECT_TRUE(runtime.cancel(f));
  // Abandoned but not yet terminal: a repeat cancel is a no-op, not a
  // second success, and records no second Cancel event.
  EXPECT_FALSE(runtime.cancel(f));
  runtime.barrier();
  EXPECT_EQ(runtime.graph().task(f.producer).state, TaskState::Cancelled);
  std::size_t cancel_events = 0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::Cancel) ++cancel_events;
  EXPECT_EQ(cancel_events, 1u);
}

TEST(Cancel, TerminalTaskReturnsFalse) {
  Runtime runtime(sim_cluster());
  const Future f = runtime.submit(timed("t", 1.0));
  runtime.barrier();
  EXPECT_FALSE(runtime.cancel(f));
  EXPECT_EQ(runtime.graph().task(f.producer).state, TaskState::Done);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 1);  // result survives a late cancel
}

TEST(WaitAllFor, AdvancesExactlyToTheDeadline) {
  Runtime runtime(sim_cluster(1, 4));
  for (int i = 0; i < 3; ++i) runtime.submit(timed("w", 100.0));
  EXPECT_FALSE(runtime.wait_all_for(30.0));
  EXPECT_DOUBLE_EQ(runtime.now(), 30.0);
  EXPECT_TRUE(runtime.wait_all_for(1000.0));
  EXPECT_DOUBLE_EQ(runtime.now(), 100.0);
}

TEST(WaitAllFor, SimZeroBudgetStartsNoWork) {
  // An already-expired deadline must not dispatch new tasks (ThreadBackend
  // checks its deadline before scheduling; the simulator must match).
  Runtime runtime(sim_cluster(1, 4));
  runtime.submit(timed("w", 10.0));
  EXPECT_FALSE(runtime.wait_all_for(0.0));
  EXPECT_DOUBLE_EQ(runtime.now(), 0.0);
  std::size_t scheduled = 0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::TaskSchedule) ++scheduled;
  EXPECT_EQ(scheduled, 0u);
}

TEST(WaitAllFor, ThreadBackendHonoursWallDeadline) {
  Runtime runtime(thread_cluster(2));
  TaskDef sleepy;
  sleepy.name = "sleepy";
  sleepy.body = [](TaskContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return std::any(1);
  };
  runtime.submit(sleepy);
  EXPECT_FALSE(runtime.wait_all_for(0.02));
  EXPECT_TRUE(runtime.wait_all_for(30.0));
}

TEST(Callbacks, FireOnCompletionWithFinalState) {
  Runtime runtime(sim_cluster(1, 4));
  std::vector<std::pair<TaskId, TaskState>> seen;
  for (const double seconds : {30.0, 10.0, 20.0})
    runtime.submit(timed("cb", seconds), {},
                   [&seen](const Future& f, TaskState s) { seen.emplace_back(f.producer, s); });
  runtime.barrier();
  ASSERT_EQ(seen.size(), 3u);
  for (const auto& [task, state] : seen) EXPECT_EQ(state, TaskState::Done);
  // Callbacks fired in completion order: 10s, 20s, 30s.
  EXPECT_EQ(seen[0].first, TaskId{1});
  EXPECT_EQ(seen[1].first, TaskId{2});
  EXPECT_EQ(seen[2].first, TaskId{0});
}

TEST(Callbacks, CancelledPendingTaskStillNotifies) {
  Runtime runtime(sim_cluster(1, 1));
  runtime.submit(timed("running", 20.0));
  bool fired = false;
  TaskState reported = TaskState::Running;
  const Future pending = runtime.submit(timed("pending", 5.0), {},
                                        [&](const Future&, TaskState s) {
                                          fired = true;
                                          reported = s;
                                        });
  runtime.cancel(pending);
  EXPECT_TRUE(fired);  // fired synchronously inside cancel()
  EXPECT_EQ(reported, TaskState::Cancelled);
}

TEST(Callbacks, ThreadBackendRunsCallbackOnCoordinator) {
  Runtime runtime(thread_cluster());
  std::vector<int> values;
  TaskDef def;
  def.name = "v";
  def.body = [](TaskContext&) { return std::any(41); };
  const Future f = runtime.submit(def, {}, [&](const Future& future, TaskState s) {
    ASSERT_EQ(s, TaskState::Done);
    values.push_back(1);
    (void)future;
  });
  runtime.barrier();
  EXPECT_EQ(values.size(), 1u);
  EXPECT_EQ(runtime.wait_on_as<int>(f), 41);
}

TEST(Callbacks, CallbackMaySubmitFollowUpWork) {
  // A completion callback submitting enough tasks to reallocate the
  // graph's record storage must not disturb the completion machinery that
  // fired it (regression: callbacks used to run inside engine mutation
  // paths holding TaskRecord references).
  Runtime runtime(sim_cluster(1, 4));
  std::vector<Future> spawned;
  const Future root = runtime.submit(timed("root", 5.0), {},
                                     [&](const Future& f, TaskState s) {
                                       EXPECT_EQ(s, TaskState::Done);
                                       EXPECT_NE(f.producer, kNoTask);
                                       for (int i = 0; i < 64; ++i)
                                         spawned.push_back(runtime.submit(timed("child", 1.0)));
                                     });
  // A dependent, so completing `root` walks its successor list.
  const Future dependent =
      runtime.submit(timed("dependent", 1.0), {{root.data, Direction::In}});
  runtime.barrier();
  ASSERT_EQ(spawned.size(), 64u);
  for (const Future& f : spawned)
    EXPECT_EQ(runtime.graph().task(f.producer).state, TaskState::Done);
  EXPECT_EQ(runtime.graph().task(dependent.producer).state, TaskState::Done);
}

TEST(Callbacks, CallbackCancelsPendingWorkMidBarrier) {
  // Early-stop shape: the first finisher's callback cancels everything
  // still queued, and the barrier returns without running it.
  Runtime runtime(sim_cluster(1, 1));
  std::vector<Future> slow;
  runtime.submit(timed("fast", 5.0), {}, [&](const Future&, TaskState) {
    for (const Future& f : slow) runtime.cancel(f);
  });
  for (int i = 0; i < 3; ++i) slow.push_back(runtime.submit(timed("slow", 100.0)));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.now(), 5.0);
  for (const Future& f : slow)
    EXPECT_EQ(runtime.graph().task(f.producer).state, TaskState::Cancelled);
}

TEST(Completions, RecordingIsOptInViaFirstDrain) {
  // Nothing is recorded before the first drain call, so callers that never
  // drain (e.g. HpoDriver) don't accumulate an unbounded queue.
  Runtime runtime(sim_cluster(1, 4));
  runtime.submit(timed("a", 1.0));
  runtime.barrier();
  EXPECT_TRUE(runtime.drain_completions().empty());  // opts in
  const Future b = runtime.submit(timed("b", 1.0));
  runtime.barrier();
  EXPECT_EQ(runtime.drain_completions(), std::vector<TaskId>{b.producer});
}

TEST(Completions, DrainReturnsTerminalTasksInCompletionOrder) {
  Runtime runtime(sim_cluster(1, 4));
  const Future a = runtime.submit(timed("a", 30.0));
  const Future b = runtime.submit(timed("b", 10.0));
  EXPECT_TRUE(runtime.drain_completions().empty());
  runtime.barrier();
  const std::vector<TaskId> drained = runtime.drain_completions();
  const std::vector<TaskId> expected{b.producer, a.producer};
  EXPECT_EQ(drained, expected);
  EXPECT_TRUE(runtime.drain_completions().empty());  // consumed
}

}  // namespace
}  // namespace chpo::rt
