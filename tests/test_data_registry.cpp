// Unit tests for versioned data management and dependency derivation —
// the COMPSs IN/OUT/INOUT semantics.
#include <gtest/gtest.h>

#include "runtime/data_registry.hpp"

namespace chpo::rt {
namespace {

TEST(DataRegistry, RegisterCommitsVersionZeroEverywhere) {
  DataRegistry reg;
  const DataId d = reg.register_data(std::any(42), 128, "config");
  EXPECT_TRUE(reg.has_value(d, 0));
  EXPECT_EQ(std::any_cast<int>(reg.value(d, 0)), 42);
  EXPECT_TRUE(reg.available_everywhere(d, 0));
  EXPECT_EQ(reg.current_version(d), 0u);
  EXPECT_EQ(reg.producer(d, 0), kNoTask);
  EXPECT_EQ(reg.bytes_of(d), 128u);
  EXPECT_EQ(reg.label_of(d), "config");
}

TEST(DataRegistry, DefaultLabelIsDatumId) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  EXPECT_EQ(reg.label_of(d), "d0");
}

TEST(DataRegistry, InReadsCurrentAndDependsOnWriter) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  // Task 0 writes (version 1), task 1 reads.
  const AccessPlan w = reg.plan_access(0, {d, Direction::Out});
  EXPECT_EQ(w.write_version, 1u);
  EXPECT_TRUE(w.depends_on.empty());  // version 0 has no producer task
  const AccessPlan r = reg.plan_access(1, {d, Direction::In});
  EXPECT_EQ(r.read_version, 1u);
  ASSERT_EQ(r.depends_on.size(), 1u);
  EXPECT_EQ(r.depends_on[0], 0u);  // RAW
}

TEST(DataRegistry, WawDependency) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::Out});
  const AccessPlan w2 = reg.plan_access(1, {d, Direction::Out});
  EXPECT_EQ(w2.write_version, 2u);
  ASSERT_EQ(w2.depends_on.size(), 1u);
  EXPECT_EQ(w2.depends_on[0], 0u);  // WAW
}

TEST(DataRegistry, WarDependencyOnReaders) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::In});
  reg.plan_access(1, {d, Direction::In});
  const AccessPlan w = reg.plan_access(2, {d, Direction::Out});
  // Writer must wait for both readers of version 0 (WAR).
  EXPECT_EQ(w.depends_on.size(), 2u);
}

TEST(DataRegistry, InOutReadsOldWritesNew) {
  DataRegistry reg;
  const DataId d = reg.register_data(std::any(1));
  const AccessPlan io = reg.plan_access(0, {d, Direction::InOut});
  EXPECT_EQ(io.read_version, 0u);
  EXPECT_EQ(io.write_version, 1u);
  // Next reader sees version 1 and depends on task 0.
  const AccessPlan r = reg.plan_access(1, {d, Direction::In});
  EXPECT_EQ(r.read_version, 1u);
  ASSERT_EQ(r.depends_on.size(), 1u);
  EXPECT_EQ(r.depends_on[0], 0u);
}

TEST(DataRegistry, ReadersResetAfterNewVersion) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::In});   // reader of v0
  reg.plan_access(1, {d, Direction::Out});  // v1, WAR on task 0
  const AccessPlan w2 = reg.plan_access(2, {d, Direction::Out});
  // Only WAW on task 1; task 0 read an older version.
  ASSERT_EQ(w2.depends_on.size(), 1u);
  EXPECT_EQ(w2.depends_on[0], 1u);
}

TEST(DataRegistry, DuplicateDependenciesCollapsed) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::Out});
  reg.plan_access(0, {d, Direction::In});  // same task reads its own write
  const AccessPlan w = reg.plan_access(1, {d, Direction::InOut});
  ASSERT_EQ(w.depends_on.size(), 1u);
  EXPECT_EQ(w.depends_on[0], 0u);
}

TEST(DataRegistry, CommitAndLocations) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::Out});
  EXPECT_FALSE(reg.has_value(d, 1));
  reg.commit(d, 1, std::any(std::string("v")), /*node=*/2);
  EXPECT_TRUE(reg.has_value(d, 1));
  EXPECT_FALSE(reg.available_everywhere(d, 1));
  EXPECT_TRUE(reg.locations(d, 1).contains(2));
  reg.add_location(d, 1, 5);
  EXPECT_TRUE(reg.locations(d, 1).contains(5));
}

TEST(DataRegistry, CommitWithNegativeNodeMeansEverywhere) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  reg.plan_access(0, {d, Direction::Out});
  reg.commit(d, 1, std::any(7), -1);
  EXPECT_TRUE(reg.available_everywhere(d, 1));
}

TEST(DataRegistry, ErrorsOnBadAccess) {
  DataRegistry reg;
  const DataId d = reg.register_data();
  EXPECT_THROW(reg.value(d, 3), std::out_of_range);
  EXPECT_THROW(reg.value(99, 0), std::out_of_range);
  EXPECT_THROW(reg.commit(d, 9, {}, 0), std::out_of_range);
  EXPECT_THROW(reg.producer(d, 9), std::out_of_range);
  // Uncommitted planned version.
  reg.plan_access(0, {d, Direction::Out});
  EXPECT_THROW(reg.value(d, 1), std::out_of_range);
}

TEST(DataRegistry, ManyDataIndependent) {
  DataRegistry reg;
  const DataId a = reg.register_data();
  const DataId b = reg.register_data();
  reg.plan_access(0, {a, Direction::Out});
  const AccessPlan r = reg.plan_access(1, {b, Direction::In});
  EXPECT_TRUE(r.depends_on.empty());  // no cross-datum dependency
  EXPECT_EQ(reg.datum_count(), 2u);
}

}  // namespace
}  // namespace chpo::rt
