// Search-space tests: the paper's Listing 1 format, range extensions,
// enumeration, sampling and GP encoding.
#include <gtest/gtest.h>

#include <set>

#include "hpo/search_space.hpp"

namespace chpo::hpo {
namespace {

constexpr const char* kListing1 = R"({
  "optimizer": ["Adam", "SGD", "RMSprop"],
  "num_epochs": [20, 50, 100],
  "batch_size": [32, 64, 128]
})";

TEST(SearchSpace, ParsesListing1) {
  const SearchSpace space = SearchSpace::from_json_text(kListing1);
  EXPECT_EQ(space.size(), 3u);
  ASSERT_NE(space.find("optimizer"), nullptr);
  EXPECT_TRUE(space.find("optimizer")->is_categorical());
  EXPECT_EQ(space.grid_size(), 27u);
}

TEST(SearchSpace, GridEnumerates27UniqueConfigs) {
  const SearchSpace space = SearchSpace::from_json_text(kListing1);
  const auto grid = space.enumerate_grid();
  ASSERT_EQ(grid.size(), 27u);
  std::set<std::string> unique;
  for (const auto& config : grid) unique.insert(json::serialize(config));
  EXPECT_EQ(unique.size(), 27u);
  // Every config holds all three keys with values from the domains.
  for (const auto& config : grid) {
    const std::string opt = config_string(config, "optimizer");
    EXPECT_TRUE(opt == "Adam" || opt == "SGD" || opt == "RMSprop");
    const auto epochs = config_int(config, "num_epochs");
    EXPECT_TRUE(epochs == 20 || epochs == 50 || epochs == 100);
  }
}

TEST(SearchSpace, GridOrderIsRowMajor) {
  const SearchSpace space = SearchSpace::from_json_text(kListing1);
  const auto grid = space.enumerate_grid();
  // Last dimension (batch_size) varies fastest.
  EXPECT_EQ(config_int(grid[0], "batch_size"), 32);
  EXPECT_EQ(config_int(grid[1], "batch_size"), 64);
  EXPECT_EQ(config_string(grid[0], "optimizer"), config_string(grid[8], "optimizer"));
  EXPECT_NE(config_string(grid[0], "optimizer"), config_string(grid[9], "optimizer"));
}

TEST(SearchSpace, IntRangeDomain) {
  SearchSpace space;
  space.add_int("hidden", 16, 19);
  EXPECT_EQ(space.grid_size(), 4u);
  const auto grid = space.enumerate_grid();
  EXPECT_EQ(config_int(grid[0], "hidden"), 16);
  EXPECT_EQ(config_int(grid[3], "hidden"), 19);
}

TEST(SearchSpace, FloatRangeBlocksGridEnumeration) {
  SearchSpace space;
  space.add_float("lr", 1e-4, 1e-1, true);
  EXPECT_FALSE(space.grid_size().has_value());
  EXPECT_THROW(space.enumerate_grid(), std::logic_error);
}

TEST(SearchSpace, RangeObjectsFromJson) {
  const SearchSpace space = SearchSpace::from_json_text(R"({
    "learning_rate": {"type": "float", "min": 0.0001, "max": 0.1, "log": true},
    "hidden": {"type": "int", "min": 16, "max": 256}
  })");
  EXPECT_EQ(space.size(), 2u);
  EXPECT_FALSE(space.find("learning_rate")->is_categorical());
}

TEST(SearchSpace, SampleStaysInDomains) {
  SearchSpace space = SearchSpace::from_json_text(kListing1);
  space.add_float("lr", 1e-4, 1e-1, true);
  space.add_int("hidden", 8, 64);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Config c = space.sample(rng);
    const double lr = config_double(c, "lr");
    EXPECT_GE(lr, 1e-4);
    EXPECT_LE(lr, 1e-1);
    const auto hidden = config_int(c, "hidden");
    EXPECT_GE(hidden, 8);
    EXPECT_LE(hidden, 64);
    const auto batch = config_int(c, "batch_size");
    EXPECT_TRUE(batch == 32 || batch == 64 || batch == 128);
  }
}

TEST(SearchSpace, LogSamplingCoversDecades) {
  SearchSpace space;
  space.add_float("lr", 1e-4, 1e-1, true);
  Rng rng(6);
  int tiny = 0;
  for (int i = 0; i < 500; ++i)
    if (config_double(space.sample(rng), "lr") < 1e-3) ++tiny;
  // Log-uniform: ~1/3 of samples under 1e-3; linear-uniform would give ~1%.
  EXPECT_GT(tiny, 100);
}

TEST(SearchSpace, EncodeWidthAndValues) {
  SearchSpace space = SearchSpace::from_json_text(kListing1);
  space.add_float("lr", 0.0, 1.0);
  EXPECT_EQ(space.encoded_width(), 3u + 3 + 3 + 1);
  Rng rng(7);
  Config c = space.sample(rng);
  const auto x = space.encode(c);
  ASSERT_EQ(x.size(), 10u);
  // Each categorical block one-hot sums to 1.
  EXPECT_DOUBLE_EQ(x[0] + x[1] + x[2], 1.0);
  EXPECT_DOUBLE_EQ(x[3] + x[4] + x[5], 1.0);
  for (double v : x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SearchSpace, EncodeIsDeterministicPerConfig) {
  const SearchSpace space = SearchSpace::from_json_text(kListing1);
  const auto grid = space.enumerate_grid();
  EXPECT_EQ(space.encode(grid[5]), space.encode(grid[5]));
  EXPECT_NE(space.encode(grid[5]), space.encode(grid[6]));
}

TEST(SearchSpace, MalformedJsonRejected) {
  EXPECT_THROW(SearchSpace::from_json_text("{}"), json::JsonError);
  EXPECT_THROW(SearchSpace::from_json_text(R"({"a": []})"), json::JsonError);
  EXPECT_THROW(SearchSpace::from_json_text(R"({"a": 5})"), json::JsonError);
  EXPECT_THROW(SearchSpace::from_json_text(R"({"a": {"type": "enum"}})"), json::JsonError);
}

TEST(SearchSpace, InvalidRangesRejected) {
  SearchSpace space;
  EXPECT_THROW(space.add_int("x", 10, 5), std::invalid_argument);
  EXPECT_THROW(space.add_float("y", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(space.add_float("z", 0.0, 1.0, /*log=*/true), std::invalid_argument);
}

// ------------------------------------------------- conditional dimensions

SearchSpace conditional_space() {
  SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam"), json::Value("SGD")});
  space.add_float("momentum", 0.0, 0.99);
  space.make_conditional("optimizer", json::Value("SGD"));
  space.add_categorical("batch_size", {json::Value(16), json::Value(32)});
  return space;
}

TEST(Conditional, SampleOmitsInactiveDimension) {
  const SearchSpace space = conditional_space();
  Rng rng(1);
  int with = 0, without = 0;
  for (int i = 0; i < 200; ++i) {
    const Config c = space.sample(rng);
    if (config_string(c, "optimizer") == "SGD") {
      EXPECT_TRUE(c.contains("momentum"));
      const double m = config_double(c, "momentum");
      EXPECT_GE(m, 0.0);
      EXPECT_LE(m, 0.99);
      ++with;
    } else {
      EXPECT_FALSE(c.contains("momentum"));
      ++without;
    }
  }
  EXPECT_GT(with, 50);
  EXPECT_GT(without, 50);
}

TEST(Conditional, GridCollapsesInactiveCombinations) {
  SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam"), json::Value("SGD")});
  space.add_categorical("momentum", {json::Value(0.0), json::Value(0.9)});
  space.make_conditional("optimizer", json::Value("SGD"));
  // Raw product is 4, but Adam's two momentum variants collapse into one.
  const auto grid = space.enumerate_grid();
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(space.grid_size(), 3u);
  int adam = 0;
  for (const Config& c : grid)
    if (config_string(c, "optimizer") == "Adam") {
      EXPECT_FALSE(c.contains("momentum"));
      ++adam;
    }
  EXPECT_EQ(adam, 1);
}

TEST(Conditional, EncodeZeroesInactiveBlock) {
  const SearchSpace space = conditional_space();
  Config adam;
  adam.set("optimizer", json::Value("Adam"));
  adam.set("batch_size", json::Value(16));
  const auto x = space.encode(adam);
  // Blocks: optimizer one-hot (2) + momentum scalar (1) + batch one-hot (2).
  ASSERT_EQ(x.size(), 5u);
  EXPECT_DOUBLE_EQ(x[2], 0.0);  // inactive momentum
}

TEST(Conditional, FromJsonConditionSyntax) {
  const SearchSpace space = SearchSpace::from_json_text(R"({
    "optimizer": ["Adam", "SGD"],
    "momentum": {"type": "float", "min": 0.0, "max": 0.99,
                 "condition": {"parent": "optimizer", "equals": "SGD"}}
  })");
  ASSERT_NE(space.find("momentum"), nullptr);
  ASSERT_TRUE(space.find("momentum")->condition.has_value());
  EXPECT_EQ(space.find("momentum")->condition->parent, "optimizer");
}

TEST(Conditional, CategoricalObjectForm) {
  const SearchSpace space = SearchSpace::from_json_text(R"({
    "optimizer": {"type": "categorical", "values": ["Adam", "SGD"]}
  })");
  EXPECT_TRUE(space.find("optimizer")->is_categorical());
}

TEST(Conditional, ValidationErrors) {
  SearchSpace space;
  EXPECT_THROW(space.make_conditional("x", json::Value(1)), std::logic_error);
  space.add_categorical("optimizer", {json::Value("Adam")});
  space.add_float("lr", 0.1, 1.0);
  EXPECT_THROW(space.make_conditional("nope", json::Value("Adam")), std::invalid_argument);
  EXPECT_THROW(space.make_conditional("optimizer", json::Value("SGD")), std::invalid_argument);
  space.add_float("other", 0.1, 1.0);
  EXPECT_THROW(space.make_conditional("lr", json::Value(0.5)), std::invalid_argument);  // non-categorical parent
}

TEST(Conditional, IsActiveQueries) {
  const SearchSpace space = conditional_space();
  const Dimension* momentum = space.find("momentum");
  ASSERT_NE(momentum, nullptr);
  Config sgd;
  sgd.set("optimizer", json::Value("SGD"));
  Config adam;
  adam.set("optimizer", json::Value("Adam"));
  EXPECT_TRUE(space.is_active(*momentum, sgd));
  EXPECT_FALSE(space.is_active(*momentum, adam));
  EXPECT_TRUE(space.is_active(*space.find("optimizer"), adam));
}

TEST(ConfigHelpers, BriefAndTypedAccess) {
  const Config c = json::parse(R"({"optimizer": "SGD", "num_epochs": 20})");
  EXPECT_EQ(config_string(c, "optimizer"), "SGD");
  EXPECT_EQ(config_int(c, "num_epochs"), 20);
  EXPECT_EQ(config_brief(c), "optimizer=\"SGD\" num_epochs=20");
  EXPECT_THROW(config_string(c, "missing"), json::JsonError);
}

}  // namespace
}  // namespace chpo::hpo
