// Tests for marginal-variance hyperparameter importance, plus the
// architecture hyperparameters it often has to rank.
#include <gtest/gtest.h>

#include "hpo/importance.hpp"
#include "ml/dataset.hpp"
#include "ml/trainer.hpp"

namespace chpo::hpo {
namespace {

Trial synthetic_trial(int index, const char* optimizer, double lr, double accuracy) {
  Trial trial;
  trial.index = index;
  trial.config.set("optimizer", json::Value(optimizer));
  trial.config.set("learning_rate", json::Value(lr));
  trial.result.final_val_accuracy = accuracy;
  return trial;
}

TEST(Importance, SingleDecisiveDimensionDominates) {
  // Accuracy depends only on the optimizer; lr is noise-free and irrelevant.
  std::vector<Trial> trials;
  int index = 0;
  for (const char* opt : {"Adam", "SGD"})
    for (double lr : {0.001, 0.01, 0.1})
      trials.push_back(
          synthetic_trial(index++, opt, lr, std::string(opt) == "Adam" ? 0.9 : 0.5));
  const auto importance = hyperparameter_importance(trials);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_EQ(importance[0].name, "optimizer");
  EXPECT_NEAR(importance[0].variance_share, 1.0, 1e-9);
  EXPECT_NEAR(importance[1].variance_share, 0.0, 1e-9);
}

TEST(Importance, ContinuousDimensionBucketsCaptureTrend) {
  // Accuracy increases with lr; optimizer irrelevant.
  std::vector<Trial> trials;
  int index = 0;
  for (const char* opt : {"Adam", "SGD"})
    for (double lr : {0.001, 0.004, 0.02, 0.09})
      trials.push_back(synthetic_trial(index++, opt, lr, lr * 10.0));
  const auto importance = hyperparameter_importance(trials);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_EQ(importance[0].name, "learning_rate");
  EXPECT_GT(importance[0].variance_share, 0.9);
}

TEST(Importance, InactiveConditionalFormsItsOwnGroup) {
  std::vector<Trial> trials;
  for (int i = 0; i < 4; ++i) {
    Trial t;
    t.index = i;
    t.config.set("optimizer", json::Value(i < 2 ? "SGD" : "Adam"));
    if (i < 2) t.config.set("momentum", json::Value(0.9));
    t.result.final_val_accuracy = i < 2 ? 0.8 : 0.4;  // SGD-with-momentum wins
    trials.push_back(std::move(t));
  }
  const auto importance = hyperparameter_importance(trials);
  ASSERT_EQ(importance.size(), 2u);
  // Both explain the split equally (they are perfectly correlated here).
  EXPECT_NEAR(importance[0].variance_share, 1.0, 1e-9);
  EXPECT_NEAR(importance[1].variance_share, 1.0, 1e-9);
}

TEST(Importance, DegenerateInputs) {
  EXPECT_TRUE(hyperparameter_importance({}).empty());
  std::vector<Trial> one{synthetic_trial(0, "Adam", 0.01, 0.5)};
  EXPECT_TRUE(hyperparameter_importance(one).empty());
  // Zero variance: all equal accuracies.
  std::vector<Trial> flat{synthetic_trial(0, "Adam", 0.01, 0.5),
                          synthetic_trial(1, "SGD", 0.02, 0.5)};
  EXPECT_TRUE(hyperparameter_importance(flat).empty());
}

TEST(Importance, FailedTrialsExcluded) {
  std::vector<Trial> trials{synthetic_trial(0, "Adam", 0.01, 0.9),
                            synthetic_trial(1, "SGD", 0.01, 0.5)};
  Trial failed = synthetic_trial(2, "RMSprop", 0.01, 0.0);
  failed.failed = true;
  trials.push_back(failed);
  const auto importance = hyperparameter_importance(trials);
  ASSERT_FALSE(importance.empty());
  for (const auto& dim : importance) EXPECT_LE(dim.distinct_values, 2u);
}

TEST(Importance, TableRendering) {
  std::vector<Trial> trials{synthetic_trial(0, "Adam", 0.01, 0.9),
                            synthetic_trial(1, "SGD", 0.01, 0.5)};
  const std::string table = importance_table(hyperparameter_importance(trials));
  EXPECT_NE(table.find("optimizer"), std::string::npos);
  EXPECT_NE(table.find("%"), std::string::npos);
}

// ------------------------------------------------ architecture hyperparams

TEST(Architecture, DeeperWiderMlpTrains) {
  const ml::Dataset ds = ml::make_mnist_like(200, 60, 31);
  ml::TrainConfig config;
  config.num_epochs = 3;
  config.hidden_layers = 2;
  config.hidden_units = 32;
  config.dropout = 0.1f;
  const ml::TrainResult result = ml::run_experiment(ds, config);
  EXPECT_GT(result.final_val_accuracy, 0.3);
}

TEST(Architecture, InvalidDimsThrow) {
  const ml::Dataset ds = ml::make_mnist_like(40, 10, 32);
  ml::TrainConfig config;
  config.hidden_layers = 0;
  EXPECT_THROW(ml::run_experiment(ds, config), std::invalid_argument);
  config.hidden_layers = 1;
  config.hidden_units = 0;
  EXPECT_THROW(ml::run_experiment(ds, config), std::invalid_argument);
}

TEST(Architecture, ParameterCountGrowsWithConfig) {
  Rng rng_a(1), rng_b(1);
  ml::Model small = ml::make_mlp(100, {16}, 10, rng_a);
  ml::Model big = ml::make_mlp(100, {64, 64}, 10, rng_b);
  EXPECT_GT(big.parameter_count(), small.parameter_count());
}

TEST(Architecture, DriverMapsArchitectureKeys) {
  const ml::Dataset dataset = ml::make_mnist_like(60, 20, 33);
  const Config config = json::parse(
      R"({"optimizer":"Adam","num_epochs":1,"batch_size":16,
          "hidden_layers":2,"hidden_units":24,"dropout":0.2})");
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.cpus = 2;
  opts.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(opts));
  const rt::TaskDef def = make_experiment_task(dataset, config, DriverOptions{}, 0);
  const auto result = runtime.wait_on_as<ml::TrainResult>(runtime.submit(def));
  EXPECT_EQ(result.epochs_run, 1);  // architecture keys accepted end-to-end
}

}  // namespace
}  // namespace chpo::hpo
