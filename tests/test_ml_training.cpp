// Dataset generation and training-loop tests: learning actually happens,
// early stopping works, runs are reproducible.
#include <gtest/gtest.h>

#include "ml/dataset.hpp"
#include "ml/trainer.hpp"

namespace chpo::ml {
namespace {

TEST(Dataset, MnistLikeShape) {
  const Dataset ds = make_mnist_like(200, 50, 1);
  EXPECT_EQ(ds.channels, 1u);
  EXPECT_EQ(ds.height, 28u);
  EXPECT_EQ(ds.sample_features(), 784u);
  EXPECT_EQ(ds.train_size(), 200u);
  EXPECT_EQ(ds.test_size(), 50u);
  EXPECT_EQ(ds.train_x.dim(0), 200u);
}

TEST(Dataset, CifarLikeShape) {
  const Dataset ds = make_cifar_like(100, 20, 1);
  EXPECT_EQ(ds.channels, 3u);
  EXPECT_EQ(ds.sample_features(), 3u * 32 * 32);
}

TEST(Dataset, LabelsBalancedAndInRange) {
  const Dataset ds = make_mnist_like(500, 100, 2);
  std::vector<int> counts(10, 0);
  for (int y : ds.train_y) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 10);
    ++counts[static_cast<std::size_t>(y)];
  }
  for (int c : counts) EXPECT_EQ(c, 50);
}

TEST(Dataset, SeededGenerationIsReproducible) {
  const Dataset a = make_mnist_like(50, 10, 7);
  const Dataset b = make_mnist_like(50, 10, 7);
  for (std::size_t i = 0; i < a.train_x.size(); ++i) EXPECT_EQ(a.train_x[i], b.train_x[i]);
  const Dataset c = make_mnist_like(50, 10, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train_x.size() && !any_diff; ++i)
    any_diff = a.train_x[i] != c.train_x[i];
  EXPECT_TRUE(any_diff);
}

TEST(Dataset, DifficultyIncreasesNoise) {
  SyntheticSpec easy;
  easy.difficulty = 0.05;
  easy.seed = 3;
  SyntheticSpec hard = easy;
  hard.difficulty = 0.9;
  const Dataset de = make_synthetic(easy);
  const Dataset dh = make_synthetic(hard);
  // Same prototypes (same seed), so higher difficulty = higher variance.
  double var_e = 0, var_h = 0;
  for (std::size_t i = 0; i < de.train_x.size(); ++i) {
    var_e += de.train_x[i] * de.train_x[i];
    var_h += dh.train_x[i] * dh.train_x[i];
  }
  EXPECT_GT(var_h, var_e);
}

TEST(Training, ImprovesOverChanceOnEasyData) {
  const Dataset ds = make_mnist_like(600, 200, 11);
  TrainConfig config;
  config.optimizer = "Adam";
  config.num_epochs = 6;
  config.batch_size = 32;
  const TrainResult result = run_experiment(ds, config);
  EXPECT_GT(result.final_val_accuracy, 0.6);  // chance is 0.1
  EXPECT_EQ(result.epochs_run, 6);
  EXPECT_EQ(result.history.size(), 6u);
}

TEST(Training, LossDecreases) {
  const Dataset ds = make_mnist_like(400, 100, 12);
  TrainConfig config;
  config.num_epochs = 5;
  const TrainResult result = run_experiment(ds, config);
  EXPECT_LT(result.history.back().train_loss, result.history.front().train_loss);
}

TEST(Training, ReproducibleWithSameSeed) {
  const Dataset ds = make_mnist_like(200, 50, 13);
  TrainConfig config;
  config.num_epochs = 2;
  config.seed = 99;
  const TrainResult a = run_experiment(ds, config);
  const TrainResult b = run_experiment(ds, config);
  EXPECT_DOUBLE_EQ(a.final_val_accuracy, b.final_val_accuracy);
  EXPECT_DOUBLE_EQ(a.history[0].train_loss, b.history[0].train_loss);
}

TEST(Training, EarlyStopOnTargetAccuracy) {
  const Dataset ds = make_mnist_like(600, 200, 14);
  TrainConfig config;
  config.num_epochs = 50;
  config.target_accuracy = 0.5;  // easily reached long before 50 epochs
  const TrainResult result = run_experiment(ds, config);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.epochs_run, 50);
  EXPECT_GE(result.final_val_accuracy, 0.5);
}

TEST(Training, EarlyStopOnPatience) {
  const Dataset ds = make_mnist_like(100, 30, 15);
  TrainConfig config;
  config.num_epochs = 60;
  config.patience = 3;
  const TrainResult result = run_experiment(ds, config);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.epochs_run, 60);
}

TEST(Training, CifarHarderThanMnist) {
  // The Figures 7/8 contrast: identical budget, lower accuracy on the
  // CIFAR-like data.
  TrainConfig config;
  config.num_epochs = 4;
  config.batch_size = 32;
  const TrainResult mnist = run_experiment(make_mnist_like(400, 150, 16), config);
  const TrainResult cifar = run_experiment(make_cifar_like(400, 150, 16), config);
  EXPECT_GT(mnist.final_val_accuracy, cifar.final_val_accuracy);
}

TEST(Training, AllThreePaperOptimizersLearn) {
  const Dataset ds = make_mnist_like(400, 100, 17);
  for (const char* name : {"Adam", "SGD", "RMSprop"}) {
    TrainConfig config;
    config.optimizer = name;
    config.num_epochs = 5;
    const TrainResult result = run_experiment(ds, config);
    EXPECT_GT(result.final_val_accuracy, 0.4) << name;
  }
}

TEST(Training, InvalidConfigThrows) {
  const Dataset ds = make_mnist_like(50, 10, 18);
  TrainConfig config;
  config.num_epochs = 0;
  EXPECT_THROW(run_experiment(ds, config), std::invalid_argument);
  config.num_epochs = 1;
  config.batch_size = 0;
  EXPECT_THROW(run_experiment(ds, config), std::invalid_argument);
  config.batch_size = 32;
  config.optimizer = "nope";
  EXPECT_THROW(run_experiment(ds, config), std::invalid_argument);
}

TEST(Training, BatchLargerThanDatasetClamped) {
  const Dataset ds = make_mnist_like(40, 10, 19);
  TrainConfig config;
  config.num_epochs = 2;
  config.batch_size = 512;
  const TrainResult result = run_experiment(ds, config);
  EXPECT_EQ(result.epochs_run, 2);
}

TEST(Training, BestAccuracyTracksMaximum) {
  const Dataset ds = make_mnist_like(300, 100, 20);
  TrainConfig config;
  config.num_epochs = 5;
  const TrainResult result = run_experiment(ds, config);
  double best = 0;
  for (const auto& e : result.history) best = std::max(best, e.val_accuracy);
  EXPECT_DOUBLE_EQ(result.best_val_accuracy, best);
  EXPECT_GE(result.best_val_accuracy, result.final_val_accuracy);
}

TEST(Evaluate, PerfectModelScoresOne) {
  // A model evaluated on its own argmax targets scores 1.0 trivially:
  // instead check evaluate() against hand-labels on a tiny fixed model.
  Rng rng(21);
  Model mlp = make_mlp(4, {}, 2, rng);
  Tensor x({2, 4}, 0.5f);
  const Tensor logits = mlp.forward(x, false, 1);
  const auto predictions = argmax_rows(logits);
  EXPECT_DOUBLE_EQ(evaluate(mlp, x, predictions, 1), 1.0);
  // Flipping labels gives 0.
  std::vector<int> wrong = predictions;
  for (int& v : wrong) v = 1 - v;
  EXPECT_DOUBLE_EQ(evaluate(mlp, x, wrong, 1), 0.0);
}

}  // namespace
}  // namespace chpo::ml
