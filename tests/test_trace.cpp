// Unit tests for trace capture, analysis, ASCII Gantt and .prv export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "cluster/cluster.hpp"
#include "trace/analysis.hpp"
#include "trace/gantt.hpp"
#include "trace/prv_writer.hpp"
#include "trace/trace.hpp"

namespace chpo::trace {
namespace {

Event run_event(std::uint64_t id, int node, std::vector<unsigned> cores, double t0, double t1) {
  return Event{.kind = EventKind::TaskRun,
               .task_id = id,
               .attempt = 1,
               .task_name = "experiment",
               .node = node,
               .cores = std::move(cores),
               .t_start = t0,
               .t_end = t1};
}

TEST(TraceSink, RecordsWhenEnabled) {
  TraceSink sink(true);
  sink.record(run_event(1, 0, {0}, 0.0, 1.0));
  EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSink, DisabledDropsEverything) {
  TraceSink sink(false);
  sink.record(run_event(1, 0, {0}, 0.0, 1.0));
  EXPECT_EQ(sink.size(), 0u);
  sink.set_enabled(true);
  sink.record(run_event(2, 0, {0}, 1.0, 2.0));
  EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSink, EventsSortedByStart) {
  TraceSink sink;
  sink.record(run_event(2, 0, {0}, 5.0, 6.0));
  sink.record(run_event(1, 0, {1}, 1.0, 2.0));
  const auto events = sink.events();
  EXPECT_EQ(events[0].task_id, 1u);
  EXPECT_EQ(events[1].task_id, 2u);
}

TEST(TraceSink, ClearEmpties) {
  TraceSink sink;
  sink.record(run_event(1, 0, {0}, 0, 1));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(Analysis, MakespanAndCounts) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 10.0), run_event(1, 0, {1}, 0.0, 4.0),
                            run_event(2, 0, {1}, 4.0, 9.0)};
  Analysis a(events);
  EXPECT_DOUBLE_EQ(a.makespan(), 10.0);
  EXPECT_EQ(a.task_count(), 3u);
  EXPECT_EQ(a.tasks_started_together(), 2u);
  EXPECT_EQ(a.peak_concurrency(), 2u);
  EXPECT_EQ(a.nodes_used(), 1u);
}

TEST(Analysis, CoreUsageAndReuse) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 10.0), run_event(1, 0, {1}, 0.0, 4.0),
                            run_event(2, 0, {1}, 4.0, 9.0)};
  Analysis a(events);
  ASSERT_EQ(a.core_usage().size(), 2u);
  EXPECT_DOUBLE_EQ(a.core_usage()[0].busy_seconds, 10.0);  // core 0
  EXPECT_DOUBLE_EQ(a.core_usage()[1].busy_seconds, 9.0);   // core 1: 4 + 5
  const auto reused = a.reused_cores();
  ASSERT_EQ(reused.size(), 1u);
  EXPECT_EQ(reused[0].core, 1u);
}

TEST(Analysis, UtilisationAgainstCapacity) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 10.0)};
  Analysis a(events);
  // One busy core out of 4 for the whole makespan.
  EXPECT_NEAR(a.utilisation_vs_capacity(4), 0.25, 1e-9);
  EXPECT_NEAR(a.mean_core_utilisation(), 1.0, 1e-9);
}

TEST(Analysis, FailureAndRetryCounters) {
  std::vector<Event> events{
      Event{.kind = EventKind::TaskFailure, .task_id = 3, .t_start = 1.0, .t_end = 1.0},
      Event{.kind = EventKind::TaskRetry, .task_id = 3, .t_start = 1.0, .t_end = 1.0},
      run_event(3, 1, {0}, 1.0, 2.0)};
  Analysis a(events);
  EXPECT_EQ(a.failure_count(), 1u);
  EXPECT_EQ(a.retry_count(), 1u);
  EXPECT_EQ(a.task_count(), 1u);
}

TEST(Analysis, EmptyTrace) {
  Analysis a({});
  EXPECT_DOUBLE_EQ(a.makespan(), 0.0);
  EXPECT_EQ(a.peak_concurrency(), 0u);
  EXPECT_EQ(a.tasks_started_together(), 0u);
}

TEST(Analysis, ConcurrencyProfileSteps) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 2.0), run_event(1, 0, {1}, 1.0, 3.0)};
  const auto profile = Analysis(events).concurrency_profile();
  ASSERT_GE(profile.size(), 3u);
  EXPECT_EQ(profile.front().running, 1u);
  EXPECT_EQ(profile.back().running, 0u);
}

TEST(Gantt, RendersRowsPerCore) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 5.0), run_event(1, 0, {1}, 0.0, 2.5)};
  const std::string g = render_gantt(events, GanttOptions{.width = 20});
  EXPECT_NE(g.find("n0/c0"), std::string::npos);
  EXPECT_NE(g.find("n0/c1"), std::string::npos);
  // Task 0's glyph 'a' fills its whole row; task 1 leaves idle dots.
  EXPECT_NE(g.find('a'), std::string::npos);
  EXPECT_NE(g.find('.'), std::string::npos);
}

TEST(Gantt, EmptyTrace) { EXPECT_EQ(render_gantt({}), "(empty trace)\n"); }

TEST(Gantt, CollapsedNodesMarkOverlap) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 4.0), run_event(1, 0, {1}, 0.0, 4.0)};
  const std::string g = render_gantt(events, GanttOptions{.width = 10, .collapse_nodes = true});
  EXPECT_NE(g.find('#'), std::string::npos);  // two tasks share the node row
}

TEST(PrvWriter, HeaderAndRecords) {
  cluster::ClusterSpec spec = cluster::marenostrum4(2);
  std::vector<Event> events{run_event(7, 1, {3}, 0.0, 1.5)};
  const std::string prv = to_prv(events, spec);
  EXPECT_EQ(prv.rfind("#Paraver", 0), 0u);  // header first
  // State record: 1:cpu:app:task:thread:t0:t1:1 with 1-based ids and ns.
  EXPECT_NE(prv.find("1:4:1:2:4:0:1500000000:1"), std::string::npos);
}

TEST(PrvWriter, RowFileNamesResources) {
  cluster::ClusterSpec spec = cluster::marenostrum4(1);
  const std::string row = to_row(spec);
  EXPECT_NE(row.find("LEVEL CPU SIZE 48"), std::string::npos);
  EXPECT_NE(row.find("mn4-0.core0"), std::string::npos);
}

TEST(PrvWriter, WritesFiles) {
  cluster::ClusterSpec spec = cluster::marenostrum4(1);
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 1.0)};
  const std::string base = "/tmp/chpo_trace_test";
  write_prv_files(base, events, spec);
  std::ifstream prv(base + ".prv"), row(base + ".row");
  EXPECT_TRUE(prv.good());
  EXPECT_TRUE(row.good());
  std::remove((base + ".prv").c_str());
  std::remove((base + ".row").c_str());
}

TEST(Analysis, StatsByNameAggregates) {
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 10.0), run_event(1, 0, {1}, 0.0, 20.0)};
  events[1].task_name = "plot";
  events.push_back(run_event(2, 0, {2}, 5.0, 11.0));  // another "experiment"
  const auto stats = Analysis(events).stats_by_name();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by name: "experiment" then "plot".
  EXPECT_EQ(stats[0].name, "experiment");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_DOUBLE_EQ(stats[0].min_seconds, 6.0);
  EXPECT_DOUBLE_EQ(stats[0].max_seconds, 10.0);
  EXPECT_DOUBLE_EQ(stats[0].mean_seconds(), 8.0);
  EXPECT_EQ(stats[1].name, "plot");
  EXPECT_DOUBLE_EQ(stats[1].total_seconds, 20.0);
}

TEST(PrvWriter, PcfNamesStatesAndEvents) {
  const std::string pcf = to_pcf();
  EXPECT_NE(pcf.find("Running task"), std::string::npos);
  EXPECT_NE(pcf.find("task_submit"), std::string::npos);
  EXPECT_NE(pcf.find("node_down"), std::string::npos);
  EXPECT_NE(pcf.find("STATES_COLOR"), std::string::npos);
}

TEST(PrvWriter, WritesPcfFileToo) {
  cluster::ClusterSpec spec = cluster::marenostrum4(1);
  std::vector<Event> events{run_event(0, 0, {0}, 0.0, 1.0)};
  const std::string base = "/tmp/chpo_trace_pcf_test";
  write_prv_files(base, events, spec);
  std::ifstream pcf(base + ".pcf");
  EXPECT_TRUE(pcf.good());
  for (const char* ext : {".prv", ".row", ".pcf"}) std::remove((base + ext).c_str());
}

TEST(ParallelismProfile, ShapeReflectsConcurrency) {
  // 4 tasks in the first half, 1 in the second.
  std::vector<Event> events;
  for (int i = 0; i < 4; ++i)
    events.push_back(run_event(static_cast<std::uint64_t>(i), 0, {static_cast<unsigned>(i)}, 0.0, 10.0));
  events.push_back(run_event(9, 0, {0}, 10.0, 20.0));
  const std::string chart = render_parallelism_profile(events, 20, 8);
  EXPECT_NE(chart.find("peak 4"), std::string::npos);
  // The top row of the chart is filled only in the first half.
  const std::size_t first_line = chart.find('\n') + 1;
  const std::string top_row = chart.substr(first_line, chart.find('\n', first_line) - first_line);
  const std::size_t bar_start = top_row.find('|') + 1;
  EXPECT_EQ(top_row[bar_start], '#');               // busy at t=0
  EXPECT_EQ(top_row[bar_start + 15], ' ');          // only 1 task at 75%
}

TEST(ParallelismProfile, EmptyTrace) {
  EXPECT_EQ(render_parallelism_profile({}), "(empty trace)\n");
}

TEST(KindNames, AllDistinct) {
  EXPECT_STREQ(kind_name(EventKind::TaskRun), "task_run");
  EXPECT_STREQ(kind_name(EventKind::NodeDown), "node_down");
  EXPECT_STREQ(kind_name(EventKind::Sync), "sync");
}

// Trace-kind completeness: adding an EventKind member without wiring it
// through kind_name / the .pcf label table / the .prv writer must fail here
// (and in chpo_lint), not silently produce an unlabeled trace.

TEST(TraceKinds, EveryKindHasADistinctName) {
  std::set<std::string> names;
  for (int k = 0; k < kEventKindCount; ++k) {
    const char* name = kind_name(static_cast<EventKind>(k));
    EXPECT_STRNE(name, "unknown") << "EventKind value " << k << " has no kind_name case";
    EXPECT_TRUE(names.insert(name).second) << "duplicate kind name: " << name;
  }
}

TEST(TraceKinds, EveryKindHasAPcfLabel) {
  const std::string pcf = to_pcf();
  for (int k = 0; k < kEventKindCount; ++k) {
    const std::string label =
        std::to_string(k) + "    " + kind_name(static_cast<EventKind>(k)) + "\n";
    EXPECT_NE(pcf.find(label), std::string::npos)
        << "missing .pcf label for EventKind value " << k;
  }
}

TEST(TraceKinds, EveryKindRoundTripsThroughPrvWriter) {
  const cluster::ClusterSpec spec = cluster::marenostrum4(1);
  for (int k = 0; k < kEventKindCount; ++k) {
    Event ev;
    ev.kind = static_cast<EventKind>(k);
    ev.task_id = 7;
    ev.node = 0;
    ev.cores = {0};
    ev.t_start = 1.0;
    ev.t_end = 2.0;
    const std::string prv = to_prv({ev}, spec);
    if (ev.kind == EventKind::TaskRun) {
      // Spans become state records (type 1).
      EXPECT_NE(prv.find("\n1:"), std::string::npos) << "no state record for TaskRun";
    } else {
      // Points become event records (type 2) carrying the kind as the value.
      const std::string record = ":9000000:" + std::to_string(k) + "\n";
      EXPECT_NE(prv.find(record), std::string::npos)
          << "no event record for EventKind value " << k;
    }
  }
}

}  // namespace
}  // namespace chpo::trace
