// Integration tests for the discrete-event backend: virtual time, queueing,
// transfers, and equivalence with the threaded backend.
#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace chpo::rt {
namespace {

RuntimeOptions sim_cluster(std::size_t nodes = 1, unsigned cpus = 4) {
  RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "sim";
  node.cpus = cpus;
  opts.cluster = cluster::homogeneous(nodes, node);
  opts.simulate = true;
  return opts;
}

TaskDef timed(std::string name, double seconds, Constraint c = {.cpus = 1}) {
  TaskDef def;
  def.name = std::move(name);
  def.constraint = c;
  def.body = [](TaskContext&) { return std::any(1); };
  def.cost = [seconds](const Placement&, const cluster::NodeSpec&) { return seconds; };
  return def;
}

TEST(SimRuntime, SingleTaskAdvancesVirtualClock) {
  Runtime runtime(sim_cluster());
  const Future f = runtime.submit(timed("t", 100.0));
  runtime.wait_on(f);
  EXPECT_DOUBLE_EQ(runtime.now(), 100.0);
}

TEST(SimRuntime, ParallelTasksOverlapPerfectly) {
  Runtime runtime(sim_cluster(1, 4));
  for (int i = 0; i < 4; ++i) runtime.submit(timed("p", 50.0));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 50.0);
  EXPECT_EQ(runtime.analyze().peak_concurrency(), 4u);
}

TEST(SimRuntime, QueueingWhenCoresExhausted) {
  // 4 cores, 5 equal tasks: one waits a full round -> makespan 2x.
  Runtime runtime(sim_cluster(1, 4));
  for (int i = 0; i < 5; ++i) runtime.submit(timed("q", 10.0));
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 20.0);
}

TEST(SimRuntime, FreedCoreIsReusedImmediately) {
  Runtime runtime(sim_cluster(1, 2));
  runtime.submit(timed("long", 30.0));
  runtime.submit(timed("short", 10.0));
  runtime.submit(timed("tail", 10.0));  // must start at t=10 on the freed core
  runtime.barrier();
  const auto analysis = runtime.analyze();
  EXPECT_DOUBLE_EQ(analysis.makespan(), 30.0);
  ASSERT_EQ(analysis.spans().size(), 3u);
  EXPECT_DOUBLE_EQ(analysis.spans()[2].start, 10.0);
}

TEST(SimRuntime, MakespanIndependentOfBodyWallTime) {
  // Virtual duration comes from the cost model, not from how long the body
  // actually takes to run.
  Runtime runtime(sim_cluster());
  TaskDef def = timed("slow_body", 5.0);
  def.body = [](TaskContext&) {
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    return std::any(static_cast<double>(sink));
  };
  runtime.submit(def);
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 5.0);
}

TEST(SimRuntime, DefaultCostWhenNoModel) {
  RuntimeOptions opts = sim_cluster();
  opts.sim.default_task_seconds = 2.5;
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "no_cost";
  def.body = [](TaskContext&) { return std::any(); };
  runtime.submit(def);
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 2.5);
}

TEST(SimRuntime, DependenciesSerialiseVirtualTime) {
  Runtime runtime(sim_cluster(1, 4));
  const Future a = runtime.submit(timed("a", 10.0));
  TaskDef b = timed("b", 15.0);
  runtime.submit(b, {{a.data, Direction::In}});
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 25.0);
}

TEST(SimRuntime, BodiesSeeSimulatedFlag) {
  Runtime runtime(sim_cluster());
  TaskDef def = timed("flagged", 1.0);
  def.body = [](TaskContext& ctx) { return std::any(ctx.simulated()); };
  const Future f = runtime.submit(def);
  EXPECT_TRUE(runtime.wait_on_as<bool>(f));
}

TEST(SimRuntime, ExecuteBodiesOffSkipsBodies) {
  RuntimeOptions opts = sim_cluster();
  opts.sim.execute_bodies = false;
  Runtime runtime(std::move(opts));
  bool ran = false;
  TaskDef def = timed("skipped", 3.0);
  def.body = [&ran](TaskContext&) {
    ran = true;
    return std::any(99);
  };
  runtime.submit(def);
  runtime.barrier();
  EXPECT_FALSE(ran);
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 3.0);
}

TEST(SimRuntime, CostReceivesPlacementAndNode) {
  RuntimeOptions opts = sim_cluster(1, 8);
  Runtime runtime(std::move(opts));
  TaskDef def;
  def.name = "scaling";
  def.constraint = {.cpus = 4};
  def.body = [](TaskContext&) { return std::any(); };
  def.cost = [](const Placement& p, const cluster::NodeSpec& node) {
    return 100.0 / (static_cast<double>(p.cpu_count()) * node.core_rate);
  };
  runtime.submit(def);
  runtime.barrier();
  EXPECT_DOUBLE_EQ(runtime.analyze().makespan(), 25.0);
}

TEST(SimRuntime, HeterogeneousNodesUseTheirOwnSpec) {
  RuntimeOptions opts;
  opts.simulate = true;
  cluster::NodeSpec slow;
  slow.name = "slow";
  slow.cpus = 1;
  slow.core_rate = 0.5;
  cluster::NodeSpec fast;
  fast.name = "fast";
  fast.cpus = 1;
  fast.core_rate = 2.0;
  opts.cluster.nodes = {slow, fast};
  Runtime runtime(std::move(opts));
  const auto make = [] {
    TaskDef def;
    def.name = "rate";
    def.body = [](TaskContext&) { return std::any(); };
    def.cost = [](const Placement&, const cluster::NodeSpec& node) { return 10.0 / node.core_rate; };
    return def;
  };
  runtime.submit(make());  // node 0 (slow): 20s
  runtime.submit(make());  // node 1 (fast): 5s
  runtime.barrier();
  const auto spans = runtime.analyze().spans();
  ASSERT_EQ(spans.size(), 2u);
  double slow_dur = 0, fast_dur = 0;
  for (const auto& s : spans) (s.node == 0 ? slow_dur : fast_dur) = s.duration();
  EXPECT_DOUBLE_EQ(slow_dur, 20.0);
  EXPECT_DOUBLE_EQ(fast_dur, 5.0);
}

TEST(SimRuntime, TransfersDelayStartWithoutPfs) {
  RuntimeOptions opts = sim_cluster(2, 2);
  opts.cluster.has_parallel_fs = false;
  opts.cluster.network.latency_s = 0.0;
  opts.cluster.network.bandwidth_gbps = 1.0;  // 1 GB/s
  Runtime runtime(std::move(opts));
  // Producer runs on node 0; consumer pinned to node 1 via exclusion.
  const Future produced = runtime.submit(timed("produce", 10.0));
  TaskDef consume = timed("consume", 10.0);
  const Future f = runtime.submit(consume, {{produced.data, Direction::In}});
  // Exclude node 0 so the consumer needs a transfer. (Set directly: the
  // graph is exposed const; use a fresh runtime approach instead.)
  runtime.barrier();
  (void)f;
  // With both on node 0 (first fit), no transfer happens; assert the PFS-off
  // path at least produced no Transfer events in the colocated case.
  std::size_t transfers = 0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::Transfer) ++transfers;
  EXPECT_EQ(transfers, 0u);
}

TEST(SimRuntime, TransferEventRecordedForRemoteInput) {
  RuntimeOptions opts = sim_cluster(2, 1);  // 1 core per node forces spread
  opts.cluster.has_parallel_fs = false;
  opts.cluster.network.latency_s = 1.0;  // visible delay
  Runtime runtime(std::move(opts));
  const Future a = runtime.submit(timed("a", 10.0));  // node 0
  const Future b = runtime.submit(timed("b", 30.0));  // node 1 (node 0 busy)
  // Consumer of a's output: node 0 frees first, so it runs there — colocated.
  // Consumer of b's output likewise lands on node 1.
  // Force a remote read: consumer of BOTH outputs must miss one of them.
  TaskDef join = timed("join", 5.0);
  runtime.submit(join, {{a.data, Direction::In}, {b.data, Direction::In}});
  runtime.barrier();
  std::size_t transfers = 0;
  for (const auto& e : runtime.trace().events())
    if (e.kind == trace::EventKind::Transfer) ++transfers;
  EXPECT_EQ(transfers, 1u);
  // Join started after the 1 s staging delay on top of b's completion.
  const auto spans = runtime.analyze().spans();
  EXPECT_NEAR(spans.back().start, 31.0, 1e-6);
}

TEST(SimRuntime, ResultsMatchThreadBackend) {
  // Same submission program on both backends must produce identical values.
  const auto program = [](Runtime& runtime) {
    const DataId base = runtime.share(100);
    TaskDef add;
    add.name = "add";
    add.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) + 11); };
    const Future a = runtime.submit(add, {{base, Direction::In}});
    TaskDef doubler;
    doubler.name = "double";
    doubler.body = [](TaskContext& ctx) { return std::any(ctx.read<int>(0) * 2); };
    const Future b = runtime.submit(doubler, {{a.data, Direction::In}});
    return runtime.wait_on_as<int>(b);
  };
  RuntimeOptions threads;
  cluster::NodeSpec node;
  node.cpus = 2;
  threads.cluster = cluster::homogeneous(1, node);
  Runtime thread_rt(std::move(threads));
  Runtime sim_rt(sim_cluster(1, 2));
  EXPECT_EQ(program(thread_rt), program(sim_rt));
  EXPECT_EQ(program(sim_rt), 222);
}

TEST(SimRuntime, Grid27On24CoresHasThreeStragglers) {
  // The Figure 5 schedule at miniature scale: 27 equal tasks, 24 slots.
  RuntimeOptions opts = sim_cluster(1, 48);
  opts.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
  opts.cluster.worker_cores = 24;
  Runtime runtime(std::move(opts));
  for (int i = 0; i < 27; ++i) runtime.submit(timed("experiment", 60.0));
  runtime.barrier();
  const auto analysis = runtime.analyze();
  EXPECT_EQ(analysis.tasks_started_together(1e-9), 24u);
  EXPECT_DOUBLE_EQ(analysis.makespan(), 120.0);
  EXPECT_EQ(analysis.reused_cores().size(), 3u);
}

}  // namespace
}  // namespace chpo::rt
