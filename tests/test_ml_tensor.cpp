// Unit tests for tensors and numeric kernels, including gradient identities.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/tensor.hpp"

namespace chpo::ml {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.shape_str(), "[2,3,4]");
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, FillAndAccess) {
  Tensor t({2, 2}, 3.5f);
  EXPECT_EQ(t.at2(1, 1), 3.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[3], -1.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[5], 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(3);
  const Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.size());
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sq / static_cast<double>(t.size()), 4.0, 0.2);
}

TEST(Matmul, KnownProduct) {
  Tensor a({2, 3}), b({3, 2}), c;
  const float av[] = {1, 2, 3, 4, 5, 6};
  const float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154);
}

TEST(Matmul, ThreadedMatchesSerial) {
  Rng rng(5);
  const Tensor a = Tensor::randn({33, 17}, rng);
  const Tensor b = Tensor::randn({17, 29}, rng);
  Tensor serial, threaded;
  matmul(a, b, serial, 1);
  matmul(a, b, threaded, 4);
  for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_FLOAT_EQ(serial[i], threaded[i]);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(6);
  const Tensor a = Tensor::randn({5, 7}, rng);
  const Tensor b = Tensor::randn({7, 4}, rng);
  Tensor reference;
  matmul(a, b, reference);

  // a @ b == matmul_bt(a, b^T) == matmul_at(a^T, b).
  Tensor bt({4, 7});
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 4; ++j) bt.at2(j, i) = b.at2(i, j);
  Tensor via_bt;
  matmul_bt(a, bt, via_bt);

  Tensor at({7, 5});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) at.at2(j, i) = a.at2(i, j);
  Tensor via_at;
  matmul_at(at, b, via_at);

  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(reference[i], via_bt[i], 1e-4);
    EXPECT_NEAR(reference[i], via_at[i], 1e-4);
  }
}

TEST(Matmul, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({4, 2}), c;
  EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
}

TEST(Bias, AddedToEveryRow) {
  Tensor x({2, 3}, 1.0f);
  Tensor bias({3});
  bias[0] = 1;
  bias[1] = 2;
  bias[2] = 3;
  add_row_bias(x, bias);
  EXPECT_FLOAT_EQ(x.at2(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(x.at2(1, 0), 2.0f);
}

TEST(Relu, ForwardBackward) {
  Tensor x({1, 4});
  x[0] = -2;
  x[1] = 0;
  x[2] = 3;
  x[3] = -0.5;
  Tensor y;
  relu_forward(x, y);
  EXPECT_FLOAT_EQ(y[0], 0);
  EXPECT_FLOAT_EQ(y[2], 3);
  Tensor dy({1, 4}, 1.0f), dx;
  relu_backward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 0);
  EXPECT_FLOAT_EQ(dx[2], 1);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(8);
  const Tensor logits = Tensor::randn({6, 10}, rng, 3.0f);
  Tensor probs;
  softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 6; ++r) {
    float sum = 0;
    for (std::size_t j = 0; j < 10; ++j) {
      sum += probs.at2(r, j);
      EXPECT_GE(probs.at2(r, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Softmax, NumericallyStableWithHugeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000;
  logits[1] = 1001;
  logits[2] = 999;
  Tensor probs;
  softmax_rows(logits, probs);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_GT(probs[1], probs[0]);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor probs({1, 3});
  probs[0] = 0.999f;
  probs[1] = 0.0005f;
  probs[2] = 0.0005f;
  Tensor dlogits;
  const float loss = cross_entropy(probs, {0}, dlogits);
  EXPECT_LT(loss, 0.01f);
}

TEST(CrossEntropy, GradientMatchesSoftmaxIdentity) {
  // d loss / d logits = (probs - onehot) / n.
  Rng rng(10);
  const Tensor logits = Tensor::randn({4, 5}, rng);
  Tensor probs, dlogits;
  softmax_rows(logits, probs);
  const std::vector<int> labels{1, 0, 4, 2};
  cross_entropy(probs, labels, dlogits);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t j = 0; j < 5; ++j) {
      const float expected =
          (probs.at2(r, j) - (static_cast<int>(j) == labels[r] ? 1.0f : 0.0f)) / 4.0f;
      EXPECT_NEAR(dlogits.at2(r, j), expected, 1e-6);
    }
}

TEST(CrossEntropy, BadLabelThrows) {
  Tensor probs({1, 3}, 0.33f);
  Tensor dlogits;
  EXPECT_THROW(cross_entropy(probs, {5}, dlogits), std::out_of_range);
  EXPECT_THROW(cross_entropy(probs, {0, 1}, dlogits), std::invalid_argument);
}

TEST(Argmax, PicksLargestPerRow) {
  Tensor t({2, 3});
  t.at2(0, 0) = 0.1f;
  t.at2(0, 1) = 0.9f;
  t.at2(0, 2) = 0.2f;
  t.at2(1, 0) = 5.0f;
  t.at2(1, 1) = -1.0f;
  t.at2(1, 2) = 4.9f;
  EXPECT_EQ(argmax_rows(t), (std::vector<int>{1, 0}));
}

}  // namespace
}  // namespace chpo::ml
