// Gaussian-process regression and expected-improvement tests.
#include <gtest/gtest.h>

#include <cmath>

#include "hpo/gp.hpp"

namespace chpo::hpo {
namespace {

TEST(Gp, KernelProperties) {
  GaussianProcess gp(0.5, 2.0, 1e-6);
  const std::vector<double> a{0.1, 0.2}, b{0.1, 0.2}, c{0.9, 0.8};
  EXPECT_DOUBLE_EQ(gp.kernel(a, b), 2.0);  // k(x,x) = signal variance
  EXPECT_LT(gp.kernel(a, c), gp.kernel(a, b));
  EXPECT_DOUBLE_EQ(gp.kernel(a, c), gp.kernel(c, a));  // symmetry
}

TEST(Gp, InterpolatesTrainingPoints) {
  GaussianProcess gp(0.3, 1.0, 1e-8);
  const std::vector<std::vector<double>> xs{{0.0}, {0.5}, {1.0}};
  const std::vector<double> ys{0.0, 1.0, 0.0};
  gp.fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.variance, 1e-3);  // near-zero uncertainty at data
  }
}

TEST(Gp, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(0.2, 1.0, 1e-6);
  gp.fit({{0.5}}, {1.0});
  const auto near = gp.predict({0.5});
  const auto far = gp.predict({0.0});
  EXPECT_LT(near.variance, far.variance);
}

TEST(Gp, MeanRevertsToPriorFarAway) {
  GaussianProcess gp(0.05, 1.0, 1e-6);
  gp.fit({{0.0}, {0.1}}, {5.0, 5.2});
  const auto far = gp.predict({1.0});
  // Zero-mean GP on shifted targets reverts to the data mean.
  EXPECT_NEAR(far.mean, 5.1, 0.2);
}

TEST(Gp, SmoothInterpolationBetweenPoints) {
  GaussianProcess gp(0.4, 1.0, 1e-8);
  gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
  const auto mid = gp.predict({0.5});
  EXPECT_GT(mid.mean, 0.2);
  EXPECT_LT(mid.mean, 0.8);
}

TEST(Gp, UnfittedPredictsPrior) {
  GaussianProcess gp(0.3, 1.5, 1e-6);
  const auto p = gp.predict({0.5});
  EXPECT_DOUBLE_EQ(p.mean, 0.0);
  EXPECT_DOUBLE_EQ(p.variance, 1.5);
  EXPECT_FALSE(gp.fitted());
}

TEST(Gp, InvalidInputsThrow) {
  EXPECT_THROW(GaussianProcess(-0.1, 1.0, 1e-6), std::invalid_argument);
  GaussianProcess gp(0.3, 1.0, 1e-6);
  EXPECT_THROW(gp.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.fit({{0.0}}, {1.0, 2.0}), std::invalid_argument);
  gp.fit({{0.0}}, {1.0});
  EXPECT_THROW(gp.predict({0.0, 1.0}), std::invalid_argument);  // dim mismatch
}

TEST(Gp, DuplicatePointsHandledByNoise) {
  GaussianProcess gp(0.3, 1.0, 1e-4);
  // Exact duplicates make K singular without the noise term.
  EXPECT_NO_THROW(gp.fit({{0.5}, {0.5}}, {1.0, 1.0}));
}

TEST(Ei, ZeroVarianceNearlyZeroImprovement) {
  EXPECT_NEAR(expected_improvement(0.5, 1e-12, 0.9), 0.0, 1e-6);
}

TEST(Ei, HigherMeanHigherEi) {
  EXPECT_GT(expected_improvement(1.0, 0.01, 0.5), expected_improvement(0.6, 0.01, 0.5));
}

TEST(Ei, HigherVarianceHigherEiBelowBest) {
  // Exploration: an uncertain point below the incumbent still has value.
  EXPECT_GT(expected_improvement(0.4, 0.25, 0.5), expected_improvement(0.4, 0.0001, 0.5));
}

TEST(Ei, NonNegative) {
  for (double mean : {-1.0, 0.0, 0.5, 2.0})
    for (double var : {1e-8, 0.01, 1.0})
      EXPECT_GE(expected_improvement(mean, var, 0.5), 0.0);
}

}  // namespace
}  // namespace chpo::hpo
