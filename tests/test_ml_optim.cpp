// Optimizer tests: convergence on convex problems, factory, state safety.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/optimizer.hpp"

namespace chpo::ml {
namespace {

/// Minimise f(p) = 0.5 * ||p - target||^2 with the given optimizer.
double optimise_quadratic(Optimizer& opt, int steps) {
  Tensor p({4});
  Tensor target({4});
  for (std::size_t i = 0; i < 4; ++i) {
    p[i] = 5.0f;
    target[i] = static_cast<float>(i);
  }
  Tensor g({4});
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < 4; ++i) g[i] = p[i] - target[i];
    opt.step({&p}, {&g});
  }
  double err = 0;
  for (std::size_t i = 0; i < 4; ++i) err += std::pow(p[i] - target[i], 2.0);
  return err;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd sgd(0.1f, 0.9f);
  EXPECT_LT(optimise_quadratic(sgd, 200), 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam(0.1f);
  EXPECT_LT(optimise_quadratic(adam, 500), 1e-3);
}

TEST(RmsProp, ConvergesOnQuadratic) {
  RmsProp rms(0.05f);
  EXPECT_LT(optimise_quadratic(rms, 800), 1e-3);
}

TEST(Sgd, MomentumAcceleratesOverPlainSgd) {
  Sgd plain(0.02f, 0.0f);
  Sgd momentum(0.02f, 0.9f);
  EXPECT_LT(optimise_quadratic(momentum, 50), optimise_quadratic(plain, 50));
}

TEST(Adam, FirstStepMagnitudeIsLr) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  Adam adam(0.1f);
  Tensor p({1});
  p[0] = 1.0f;
  Tensor g({1});
  g[0] = 123.0f;  // any gradient: step normalised
  adam.step({&p}, {&g});
  EXPECT_NEAR(p[0], 1.0f - 0.1f, 1e-3);
}

TEST(Optimizer, FactoryMatchesPaperNames) {
  EXPECT_EQ(make_optimizer("SGD")->name(), "SGD");
  EXPECT_EQ(make_optimizer("Adam")->name(), "Adam");
  EXPECT_EQ(make_optimizer("RMSprop")->name(), "RMSprop");
  EXPECT_THROW(make_optimizer("adagrad"), std::invalid_argument);
}

TEST(Optimizer, FactoryCustomLearningRate) {
  auto opt = make_optimizer("SGD", 0.5f);
  Tensor p({1});
  p[0] = 1.0f;
  Tensor g({1});
  g[0] = 1.0f;
  opt->step({&p}, {&g});
  EXPECT_NEAR(p[0], 0.5f, 1e-6);  // momentum term is zero on first step
}

TEST(Optimizer, ChangingParamListThrows) {
  Adam adam(0.01f);
  Tensor a({2}), b({2}), ga({2}), gb({2});
  adam.step({&a}, {&ga});
  EXPECT_THROW(adam.step({&a, &b}, {&ga, &gb}), std::invalid_argument);
}

TEST(Optimizer, MultipleParamTensors) {
  Sgd sgd(0.1f, 0.0f);
  Tensor w({3}, 1.0f), b({1}, 1.0f);
  Tensor gw({3}, 1.0f), gb({1}, 2.0f);
  sgd.step({&w, &b}, {&gw, &gb});
  EXPECT_NEAR(w[0], 0.9f, 1e-6);
  EXPECT_NEAR(b[0], 0.8f, 1e-6);
}

}  // namespace
}  // namespace chpo::ml
