// The paper's headline workflow (§4-§6): MNIST grid search over
// optimizer x epochs x batch_size on a MareNostrum4 node, with the COMPSs
// worker holding half the cores — Figures 5 and 7 in one program.
//
// Two phases:
//   1. a *real* scaled-down grid search on the threaded backend, producing
//      the accuracy table and per-epoch curves of Figure 7;
//   2. the same 27-task application on the discrete-event backend at full
//      paper scale (60k images, 20-100 epochs), producing the Figure 5
//      timeline: 24 tasks start together, 3 queue, ~207 min makespan.
#include <cstdio>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/report.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"
#include "trace/gantt.hpp"
#include "trace/prv_writer.hpp"

namespace {

constexpr const char* kListing1 = R"({
  "optimizer":  ["Adam", "SGD", "RMSprop"],
  "num_epochs": [20, 50, 100],
  "batch_size": [32, 64, 128]
})";

}  // namespace

int main() {
  using namespace chpo;
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(kListing1);

  // ---- Phase 1: real training, scaled down (epochs / 10) --------------
  std::printf("== phase 1: real grid search (27 configs, epochs/10) ==\n");
  {
    const ml::Dataset dataset = ml::make_mnist_like(600, 200, 42);
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    hpo::DriverOptions driver_options;
    driver_options.trial_constraint = {.cpus = 1};
    driver_options.epoch_divisor = 10;  // 20/50/100 -> 2/5/10 epochs
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);

    hpo::GridSearch grid(space);
    const hpo::HpoOutcome outcome = driver.run(grid);
    std::printf("%s\n", hpo::trials_table(outcome.trials).c_str());
    std::printf("%s\n", hpo::accuracy_chart(outcome.trials, 80, 16).c_str());
    std::printf("%s\n", hpo::outcome_summary(outcome).c_str());
  }

  // ---- Phase 2: paper-scale schedule on the simulator ------------------
  std::printf("== phase 2: Figure 5 schedule on one MN4 node (simulated) ==\n");
  {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(1);
    options.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
    options.cluster.worker_cores = 24;  // worker takes half the node
    options.simulate = true;
    options.sim.execute_bodies = false;
    rt::Runtime runtime(std::move(options));

    const ml::Dataset empty;
    for (const auto& config : space.enumerate_grid()) {
      hpo::DriverOptions driver_options;
      driver_options.workload = ml::mnist_paper_model();
      driver_options.trial_constraint = {.cpus = 1};
      runtime.submit(hpo::make_experiment_task(empty, config, driver_options, 0));
    }
    runtime.barrier();

    const auto analysis = runtime.analyze();
    std::printf("tasks: %zu, started at t=0: %zu, peak concurrency: %zu\n",
                analysis.task_count(), analysis.tasks_started_together(1e-9),
                analysis.peak_concurrency());
    std::printf("makespan: %s (paper: ~207 min)\n",
                format_duration(analysis.makespan()).c_str());
    std::printf("cores reused by queued tasks: %zu (paper: 3)\n\n",
                analysis.reused_cores().size());
    std::printf("%s\n", trace::render_gantt(runtime.trace().events(),
                                            {.width = 96, .max_rows = 26})
                            .c_str());
    trace::write_prv_files("mnist_grid_search", runtime.trace().events(),
                           runtime.cluster_spec());
    std::printf("Paraver trace written to mnist_grid_search.prv/.row\n");
  }
  return 0;
}
