// Fault tolerance demo (§3/§4): a flaky task retried on its node, a task
// resubmitted after its node dies, and an HPO run that survives both.
#include <cstdio>

#include "hpo/driver.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"
#include "trace/gantt.hpp"

int main() {
  using namespace chpo;

  std::printf("== scenario 1: task fails twice, succeeds on attempt 3 ==\n");
  {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 2;
    options.cluster = cluster::homogeneous(2, node);
    options.simulate = true;
    options.injector.force_task_failures(0, 2);
    rt::Runtime runtime(std::move(options));

    rt::TaskDef experiment;
    experiment.name = "experiment";
    experiment.body = [](rt::TaskContext& ctx) { return std::any(ctx.attempt()); };
    experiment.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 60.0; };
    const rt::Future f = runtime.submit(experiment);
    const int attempt = runtime.wait_on_as<int>(f);
    const auto analysis = runtime.analyze();
    std::printf("succeeded on attempt %d; failures=%zu retries=%zu\n", attempt,
                analysis.failure_count(), analysis.retry_count());
    for (const auto& span : analysis.spans())
      std::printf("  attempt %d on node %d: %s .. %s\n", span.attempt, span.node,
                  format_duration(span.start).c_str(), format_duration(span.end).c_str());
  }

  std::printf("\n== scenario 2: node dies mid-run, tasks migrate ==\n");
  {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 4;
    options.cluster = cluster::homogeneous(2, node);
    options.simulate = true;
    options.injector.schedule_node_failure(0, 90.0);
    rt::Runtime runtime(std::move(options));

    for (int i = 0; i < 8; ++i) {
      rt::TaskDef def;
      def.name = "experiment";
      def.body = [](rt::TaskContext&) { return std::any(1); };
      def.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 120.0; };
      runtime.submit(def);
    }
    runtime.barrier();
    const auto analysis = runtime.analyze();
    std::printf("all %zu tasks finished despite node 0 dying at t=90s\n",
                analysis.task_count());
    std::printf("failures=%zu, makespan=%s\n", analysis.failure_count(),
                format_duration(analysis.makespan()).c_str());
    std::printf("%s\n",
                trace::render_gantt(runtime.trace().events(), {.width = 80}).c_str());
  }

  std::printf("== scenario 3: HPO outcome unaffected by random failures ==\n");
  {
    const ml::Dataset dataset = ml::make_mnist_like(200, 60, 5);
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 2;
    options.cluster = cluster::homogeneous(2, node);
    options.injector = rt::FaultInjector(7, /*task_failure_prob=*/0.25);
    options.fault_policy.max_attempts = 8;
    rt::Runtime runtime(std::move(options));
    hpo::DriverOptions driver_options;
    driver_options.epoch_cap = 1;
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(
        R"({"optimizer": ["Adam", "SGD"], "batch_size": [16, 32]})");
    hpo::GridSearch grid(space);
    const hpo::HpoOutcome outcome = driver.run(grid);
    std::size_t failed = 0;
    for (const auto& t : outcome.trials)
      if (t.failed) ++failed;
    std::printf("trials: %zu, permanently failed: %zu, retries: %zu\n",
                outcome.trials.size(), failed, runtime.analyze().retry_count());
  }
  return 0;
}
