// The "future work" library in action (§7): model-based HPO over a mixed
// continuous/categorical space with GP expected improvement, compared
// against random search at the same budget, plus successive halving.
#include <cstdio>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/hyperband.hpp"
#include "hpo/report.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace chpo;

  hpo::SearchSpace space;
  space.add_categorical("optimizer", {json::Value("Adam"), json::Value("SGD"),
                                      json::Value("RMSprop")});
  space.add_float("learning_rate", 1e-4, 1e-1, /*log=*/true);
  space.add_categorical("batch_size", {json::Value(16), json::Value(32), json::Value(64)});

  const ml::Dataset dataset = ml::make_mnist_like(300, 100, 77);
  const auto run_algorithm = [&](hpo::SearchAlgorithm& algorithm) {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    hpo::DriverOptions driver_options;
    driver_options.epoch_cap = 2;
    driver_options.seed = 3;
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    return driver.run(algorithm);
  };

  std::printf("== GP expected-improvement, 12 evaluations ==\n");
  hpo::GpBayesOpt bo(space, {.max_evals = 12, .n_init = 4, .seed = 9});
  const hpo::HpoOutcome bo_outcome = run_algorithm(bo);
  std::printf("%s\n", hpo::trials_table(bo_outcome.trials).c_str());
  std::printf("%s\n", hpo::outcome_summary(bo_outcome).c_str());

  std::printf("== random search, same budget ==\n");
  hpo::RandomSearch random(space, 12, 9);
  const hpo::HpoOutcome random_outcome = run_algorithm(random);
  std::printf("%s\n", hpo::outcome_summary(random_outcome).c_str());

  std::printf("== successive halving: 9 configs, eta=3 ==\n");
  {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    hpo::HalvingOptions halving;
    halving.initial_configs = 9;
    halving.initial_epochs = 1;
    halving.eta = 3.0;
    halving.max_epochs = 9;
    const hpo::HalvingOutcome outcome =
        hpo::successive_halving(runtime.main_study(), dataset, space, halving);
    for (const auto& rung : outcome.rungs)
      std::printf("rung %d: %zu trials at %d epochs\n", rung.rung, rung.trials.size(),
                  rung.epochs);
    std::printf("best: %s -> %.3f\n", hpo::config_brief(outcome.best_config).c_str(),
                outcome.best_accuracy);
  }
  return 0;
}
