// Quickstart: the paper's Listing 2 in C++, end to end in ~60 lines.
//
//   1. describe the search space (the Listing 1 JSON),
//   2. spin up the runtime on a small cluster,
//   3. run grid search — every experiment is a parallel task,
//   4. wait_on the results and print the best configuration.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/report.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace chpo;

  // The search space of the paper's Listing 1, scaled to laptop budgets.
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(R"({
    "optimizer":  ["Adam", "SGD", "RMSprop"],
    "num_epochs": [2, 4],
    "batch_size": [16, 32]
  })");

  // Synthetic MNIST stand-in (see DESIGN.md §3 on dataset substitution).
  // Created before the Runtime: tasks may still read it while the runtime
  // drains at destruction, so it must outlive the runtime.
  const ml::Dataset dataset = ml::make_mnist_like(400, 100, /*seed=*/7);

  // A 4-core node; swap in cluster::marenostrum4(N) for cluster scale.
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "laptop";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(options));

  // Each config becomes an `experiment` task with @constraint(cpus=2).
  hpo::DriverOptions driver_options;
  driver_options.trial_constraint = {.cpus = 2};
  hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);

  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);

  std::printf("%s", hpo::trials_table(outcome.trials).c_str());
  std::printf("\n%s", hpo::outcome_summary(outcome).c_str());
  std::printf("\ntask graph (Graphviz):\n%s", runtime.graph_dot().c_str());
  return outcome.best() ? 0 : 1;
}
