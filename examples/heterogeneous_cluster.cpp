// Heterogeneous-cluster HPO: the paper's §3 decorators working together.
//
// A mixed cluster of MareNostrum4 CPU nodes and a POWER9 GPU node; each
// experiment declares a GPU implementation plus a CPU @implement fallback,
// so the runtime fills the V100s first and spills the remainder onto CPU
// nodes. A final @multinode data-parallel retraining of the winning config
// spans several CPU nodes.
#include <cstdio>

#include "hpo/driver.hpp"
#include "hpo/search_space.hpp"
#include "ml/cost_model.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"
#include "trace/gantt.hpp"

int main() {
  using namespace chpo;

  // 4 MN4 CPU nodes + 1 POWER9 (4x V100).
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(4);
  options.cluster.nodes.push_back(cluster::power9_node());
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));

  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(R"({
    "optimizer":  ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128]
  })");
  const ml::WorkloadModel workload = ml::cifar_paper_model();

  std::vector<rt::Future> results;
  for (const auto& config : space.enumerate_grid()) {
    const std::string optimizer = hpo::config_string(config, "optimizer");
    const int epochs = static_cast<int>(hpo::config_int(config, "num_epochs"));
    const int batch = static_cast<int>(hpo::config_int(config, "batch_size"));

    rt::TaskDef def;
    def.name = "experiment";
    def.constraint = {.cpus = 8, .gpus = 1};  // primary: V100 + feeder cores
    def.cost = [=](const rt::Placement& p, const cluster::NodeSpec& node) {
      return ml::experiment_seconds(workload, optimizer, epochs, batch, p.cpu_count(),
                                    p.gpu_count(), node);
    };
    rt::TaskVariant cpu;  // @implement fallback: a whole CPU node
    cpu.label = "cpu";
    cpu.constraint = {.cpus = 48};
    cpu.cost = [=](const rt::Placement& p, const cluster::NodeSpec& node) {
      return ml::experiment_seconds(workload, optimizer, epochs, batch, p.cpu_count(), 0, node);
    };
    def.variants.push_back(std::move(cpu));
    results.push_back(runtime.submit(def));
  }
  runtime.barrier();

  const auto analysis = runtime.analyze();
  std::printf("27 experiments over 4 CPU nodes + 1 GPU node\n");
  std::printf("makespan: %s, peak parallel tasks: %zu, nodes used: %zu\n",
              format_duration(analysis.makespan()).c_str(), analysis.peak_concurrency(),
              analysis.nodes_used());
  for (const auto& stats : analysis.stats_by_name())
    std::printf("task '%s': %zu runs, %s .. %s (mean %s)\n", stats.name.c_str(), stats.count,
                format_duration(stats.min_seconds).c_str(),
                format_duration(stats.max_seconds).c_str(),
                format_duration(stats.mean_seconds()).c_str());
  std::printf("\n%s\n",
              trace::render_parallelism_profile(runtime.trace().events(), 90, 10).c_str());

  // Retrain the winner across 4 CPU nodes with @multinode data parallelism.
  rt::TaskDef retrain;
  retrain.name = "distributed_retraining";
  retrain.constraint = {.cpus = 48, .nodes = 4};
  retrain.cost = [&workload](const rt::Placement& p, const cluster::NodeSpec& node) {
    const double single = ml::cpu_task_seconds(workload, 100, 64, p.cpu_count(), node);
    const double n = p.node_count();
    return single / n * (1.0 + 0.05 * (n - 1));  // 5% sync tax per extra node
  };
  const rt::Future final_model = runtime.submit(retrain);
  runtime.wait_on(final_model);
  std::printf("final @multinode retraining on 4 nodes finished at %s\n",
              format_duration(runtime.now()).c_str());
  return 0;
}
