// Distributed data-parallel training through the runtime — the dislib-style
// workload the paper's conclusion points toward, with task groups, the
// parallelism profile, and a Chrome trace artifact.
#include <cstdio>

#include "ml/distributed.hpp"
#include "support/strings.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/gantt.hpp"

int main() {
  using namespace chpo;

  const ml::Dataset dataset = ml::make_mnist_like(480, 160, 7);

  std::printf("== real local-SGD on the threaded backend ==\n");
  {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));

    ml::DistributedOptions distributed;
    distributed.shards = 4;
    distributed.rounds = 4;
    distributed.local_epochs = 2;
    const ml::DistributedResult result = ml::distributed_train(runtime, dataset, distributed);
    std::printf("round accuracies:");
    for (double accuracy : result.round_val_accuracy) std::printf(" %.3f", accuracy);
    std::printf("\nfinal: %.3f (%zu tasks through the runtime)\n\n", result.final_val_accuracy,
                runtime.task_count());
    trace::write_chrome_trace("distributed_training.trace.json", runtime.trace().events());
    std::printf("Chrome trace written to distributed_training.trace.json "
                "(open in chrome://tracing)\n\n");
  }

  std::printf("== virtual scaling on MN4 nodes ==\n");
  std::printf("%-10s %-14s\n", "shards", "makespan");
  for (const unsigned shards : {2u, 4u, 8u}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(shards);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    ml::DistributedOptions distributed;
    distributed.shards = shards;
    distributed.rounds = 6;
    distributed.shard_task_seconds = 600.0 / shards;  // fixed total work
    distributed.shard_constraint = {.cpus = 48};
    ml::distributed_train(runtime, dataset, distributed);
    std::printf("%-10u %-14s\n", shards, format_duration(runtime.now()).c_str());
    if (shards == 4)
      std::printf("%s\n",
                  trace::render_parallelism_profile(runtime.trace().events(), 72, 8).c_str());
  }
  return 0;
}
