// CIFAR-scale random search on a GPU cluster — the paper's §6.1 GPU story
// plus its §2.1 claim that random search finds good configs in a fraction
// of grid search's budget, and the early-stopping behaviour of §6.2.
//
// Phase 1 runs a real (scaled-down) random search with HPO-level early
// stopping on the CIFAR-like dataset. Phase 2 simulates the same
// application on a CTE-POWER9 node (4x V100): each trial takes one GPU and
// a slice of preprocessing cores, reproducing the "only 4 parallel tasks,
// still under an hour" observation.
#include <cstdio>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/report.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"

int main() {
  using namespace chpo;
  hpo::SearchSpace space = hpo::SearchSpace::from_json_text(R"({
    "optimizer":  ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128]
  })");
  // Random search handles continuous dimensions grid search cannot.
  space.add_float("learning_rate", 1e-4, 3e-2, /*log=*/true);

  std::printf("== phase 1: real random search with early stop ==\n");
  {
    // The dataset must outlive the Runtime: the runtime's destructor drains
    // any tasks still training on it after an early stop.
    const ml::Dataset dataset = ml::make_cifar_like(300, 100, 11);
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    hpo::DriverOptions driver_options;
    driver_options.trial_constraint = {.cpus = 2};
    driver_options.epoch_divisor = 20;        // keep real runtime laptop-sized
    driver_options.stop_on_accuracy = 0.55;   // stop the HPO once good enough
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);

    hpo::RandomSearch random(space, 12, /*seed=*/21);
    const hpo::HpoOutcome outcome = driver.run(random);
    std::printf("%s\n", hpo::trials_table(outcome.trials).c_str());
    std::printf("%s\n", hpo::outcome_summary(outcome).c_str());
  }

  std::printf("== phase 2: POWER9 4xV100 schedule (simulated) ==\n");
  {
    rt::RuntimeOptions options;
    options.cluster = cluster::power9(1);
    options.simulate = true;
    options.sim.execute_bodies = false;
    rt::Runtime runtime(std::move(options));

    const ml::Dataset empty;
    hpo::RandomSearch random(space, 27, /*seed=*/22);
    while (auto config = random.next()) {
      hpo::DriverOptions driver_options;
      driver_options.workload = ml::cifar_paper_model();
      driver_options.trial_constraint = {.cpus = 16, .gpus = 1};
      runtime.submit(hpo::make_experiment_task(empty, *config, driver_options, 0));
    }
    runtime.barrier();
    const auto analysis = runtime.analyze();
    std::printf("tasks: %zu, peak parallel: %zu (4 GPUs -> 4)\n", analysis.task_count(),
                analysis.peak_concurrency());
    std::printf("makespan: %s (paper: \"less than an hour\")\n",
                format_duration(analysis.makespan()).c_str());
  }
  return 0;
}
