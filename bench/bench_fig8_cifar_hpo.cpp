// Figure 8: CIFAR-10 hyperparameter optimisation results — the harder
// dataset spreads configurations out and lowers absolute accuracy, which
// is why the paper recommends random search here ("it is possible to
// determine a good set of hyperparameters with just a few experiments").
//
// Runs the real (scaled-down) grid, then random search with a quarter of
// the budget, and compares best-found accuracies.
#include <algorithm>

#include "bench_common.hpp"
#include "hpo/algorithms.hpp"
#include "hpo/report.hpp"
#include "ml/dataset.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig8_cifar_hpo", "Figure 8 (CIFAR10 HPO using grid search)");

  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "local";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(options));

  const ml::Dataset dataset = ml::make_cifar_like(250, 100, 4242);
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(bench::kListing1);

  hpo::DriverOptions driver_options;
  driver_options.trial_constraint = {.cpus = 1};
  driver_options.epoch_divisor = 10;  // CNN training: keep it laptop-sized
  driver_options.seed = 7;
  hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);

  std::printf("%s\n", hpo::trials_table(outcome.trials).c_str());
  std::printf("%s\n", hpo::accuracy_chart(outcome.trials, 80, 16).c_str());

  double best = 0, worst = 1;
  for (const auto& trial : outcome.trials) {
    if (trial.failed) continue;
    best = std::max(best, trial.result.best_val_accuracy);
    worst = std::min(worst, trial.result.best_val_accuracy);
  }
  std::printf("accuracy spread: %.3f .. %.3f (harder than MNIST, wider spread)\n", worst, best);
  std::printf("%s", hpo::outcome_summary(outcome).c_str());

  // Random search with a third of the budget (paper §6.2's suggestion),
  // averaged over 5 seeds — a single 9-trial draw is too noisy to compare.
  double mean_best = 0;
  constexpr int kReps = 5;
  for (int rep = 0; rep < kReps; ++rep) {
    rt::RuntimeOptions rs_options;
    rs_options.cluster = cluster::homogeneous(1, node);
    rt::Runtime rs_runtime(std::move(rs_options));
    hpo::HpoDriver rs_driver(rs_runtime.main_study(), dataset, driver_options);
    hpo::RandomSearch random(space, 9, 101 + static_cast<std::uint64_t>(rep));
    const hpo::HpoOutcome rs_outcome = rs_driver.run(random);
    if (rs_outcome.best()) mean_best += rs_outcome.best()->result.final_val_accuracy;
  }
  mean_best /= kReps;
  if (outcome.best())
    std::printf("\nrandom search, 9/27 of the budget, mean best over %d seeds: %.3f\n"
                "full grid best: %.3f -> gap %.3f (paper §2.1: random gets \"good or\n"
                "better\" results at a fraction of grid's cost)\n",
                kReps, mean_best, outcome.best()->result.final_val_accuracy,
                outcome.best()->result.final_val_accuracy - mean_best);
  return 0;
}
