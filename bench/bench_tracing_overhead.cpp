// §5: "Both tracing and graph generation create a performance overhead.
// These two features can easily be turned off by a simple flag."
//
// Measures the real (wall-clock, threaded backend) cost of tracing by
// running an identical task storm with the flag on and off, plus the raw
// per-event cost of the trace sink.
#include <algorithm>

#include "bench_common.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace chpo;

double run_storm(bool tracing, int n_tasks) {
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "local";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(1, node);
  options.tracing = tracing;
  rt::Runtime runtime(std::move(options));
  Stopwatch clock;
  for (int i = 0; i < n_tasks; ++i) {
    rt::TaskDef def;
    def.name = "tiny";
    def.body = [](rt::TaskContext&) { return std::any(1); };
    runtime.submit(def);
  }
  runtime.barrier();
  return clock.elapsed_seconds();
}

}  // namespace

int main() {
  bench::print_header("bench_tracing_overhead", "Section 5 (tracing on/off flag)");

  constexpr int kTasks = 2000;
  // Warm-up to stabilise allocators/thread pools; then best-of-5
  // alternating runs (single-core containers are noisy).
  run_storm(true, 200);
  double traced = 1e300, untraced = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    traced = std::min(traced, run_storm(true, kTasks));
    untraced = std::min(untraced, run_storm(false, kTasks));
  }
  std::printf("%d no-op tasks, threaded backend:\n", kTasks);
  std::printf("  tracing ON : %.3f s (%.1f us/task)\n", traced, 1e6 * traced / kTasks);
  std::printf("  tracing OFF: %.3f s (%.1f us/task)\n", untraced, 1e6 * untraced / kTasks);
  std::printf("  overhead   : %+.1f%%\n", 100.0 * (traced / untraced - 1.0));

  // Raw sink cost per event.
  trace::TraceSink on(true), off(false);
  constexpr int kEvents = 200000;
  Stopwatch clock;
  for (int i = 0; i < kEvents; ++i)
    on.record(trace::Event{.kind = trace::EventKind::TaskRun,
                           .task_id = static_cast<std::uint64_t>(i),
                           .task_name = "experiment",
                           .node = 0,
                           .cores = {0},
                           .t_start = static_cast<double>(i),
                           .t_end = i + 1.0});
  const double enabled_s = clock.elapsed_seconds();
  clock.reset();
  for (int i = 0; i < kEvents; ++i)
    off.record(trace::Event{.kind = trace::EventKind::TaskRun,
                            .task_id = static_cast<std::uint64_t>(i),
                            .task_name = "experiment",
                            .node = 0,
                            .cores = {0},
                            .t_start = static_cast<double>(i),
                            .t_end = i + 1.0});
  const double disabled_s = clock.elapsed_seconds();
  std::printf("\ntrace sink, %d events:\n", kEvents);
  std::printf("  enabled : %.1f ns/event\n", 1e9 * enabled_s / kEvents);
  std::printf("  disabled: %.1f ns/event (flag check only)\n", 1e9 * disabled_s / kEvents);
  return 0;
}
