// Engine throughput baseline (ROADMAP item 2): tasks/sec through the full
// submit -> schedule -> run -> retire funnel, on both backends, with one
// study vs N concurrent studies multiplexing the engine. The multi-study
// rows measure what the study layer costs: per-task study tagging, the
// fair-share pass in Engine::schedule, and per-study completion routing.
// Submission goes through StudySession::submit_batch — one admission
// round-trip per study wave — which is the hot path this benchmark gates.
//
// Results go to stdout as a table and (optionally) to a JSON file so the
// perf trajectory has a committed baseline: run with
//   bench_engine_throughput --json BENCH_engine.json
// Every row carries provenance (commit, date, host_threads) so baseline
// history stays attributable; tools/bench_gate.py compares a fresh run
// against the latest committed row per configuration.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "runtime/study_session.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace chpo;

struct Row {
  std::string backend;
  int studies = 1;
  int tasks = 0;
  double seconds = 0.0;
  std::string commit;
  std::string date;
  unsigned host_threads = 0;
  double tasks_per_second() const { return seconds > 0 ? tasks / seconds : 0.0; }
};

rt::TaskDef tiny_task() {
  rt::TaskDef def;
  def.name = "tiny";
  def.body = [](rt::TaskContext&) { return std::any(1); };
  // Near-zero virtual cost so the simulated run measures engine overhead,
  // not simulated compute.
  def.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 1e-6; };
  return def;
}

/// Short commit hash of the working tree, or "unknown" outside a checkout.
std::string current_commit() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (!pipe) return "unknown";
  char buf[64] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe)) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

std::string current_date() {
  const std::time_t now = std::time(nullptr);
  char buf[16] = {0};
  std::tm tm{};
  if (localtime_r(&now, &tm) == nullptr || std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm) == 0)
    return "unknown";
  return buf;
}

/// Wall-clock for `n_tasks` no-op tasks spread evenly over `n_studies`
/// sessions (one submit_batch wave per session), submit to last retirement.
Row run_storm(bool simulate, int n_studies, int n_tasks) {
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "local";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(2, node);
  options.simulate = simulate;
  rt::Runtime runtime(std::move(options));

  std::vector<rt::StudySession> sessions;
  sessions.push_back(runtime.main_study());
  for (int s = 1; s < n_studies; ++s)
    sessions.push_back(runtime.open_study({.name = "storm-" + std::to_string(s)}));

  Stopwatch clock;
  const rt::TaskDef def = tiny_task();
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const int share = n_tasks / n_studies + (static_cast<int>(s) < n_tasks % n_studies ? 1 : 0);
    std::vector<rt::Runtime::BatchItem> wave;
    wave.reserve(static_cast<std::size_t>(share));
    for (int i = 0; i < share; ++i) wave.push_back({.def = def, .params = {}, .on_complete = {}});
    sessions[s].submit_batch(std::move(wave));
  }
  for (rt::StudySession& session : sessions) session.barrier();
  return Row{.backend = simulate ? "sim" : "thread",
             .studies = n_studies,
             .tasks = n_tasks,
             .seconds = clock.elapsed_seconds()};
}

Row best_of(int reps, bool simulate, int n_studies, int n_tasks) {
  Row best = run_storm(simulate, n_studies, n_tasks);
  for (int rep = 1; rep < reps; ++rep) {
    const Row row = run_storm(simulate, n_studies, n_tasks);
    if (row.seconds < best.seconds) best = row;
  }
  return best;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"bench_engine_throughput\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"backend\": \"%s\", \"studies\": %d, \"tasks\": %d, "
                 "\"seconds\": %.6f, \"tasks_per_second\": %.1f, "
                 "\"commit\": \"%s\", \"date\": \"%s\", \"host_threads\": %u}%s\n",
                 r.backend.c_str(), r.studies, r.tasks, r.seconds, r.tasks_per_second(),
                 r.commit.c_str(), r.date.c_str(), r.host_threads,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("bench_engine_throughput",
                      "engine baseline (tasks/sec, 1 vs N studies, both backends)");

  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];

  // Best-of-5: the gate compares against the latest committed row with a
  // 25% budget, so the reported number must sit at the quiet-machine end
  // of the run-to-run distribution, not in its noise band.
  constexpr int kTasks = 4000;
  constexpr int kReps = 5;
  run_storm(false, 1, 400);  // warm-up: thread pool + allocators
  run_storm(true, 1, 400);

  const std::string commit = current_commit();
  const std::string date = current_date();
  const unsigned host_threads = std::thread::hardware_concurrency();

  std::vector<Row> rows;
  for (const bool simulate : {false, true})
    for (const int studies : {1, 4}) {
      Row row = best_of(kReps, simulate, studies, kTasks);
      row.commit = commit;
      row.date = date;
      row.host_threads = host_threads;
      rows.push_back(std::move(row));
    }

  std::printf("%d no-op tasks, best of %d:\n", kTasks, kReps);
  std::printf("  %-8s %8s %10s %14s\n", "backend", "studies", "seconds", "tasks/sec");
  for (const Row& r : rows)
    std::printf("  %-8s %8d %10.3f %14.1f\n", r.backend.c_str(), r.studies, r.seconds,
                r.tasks_per_second());
  const Row& t1 = rows[0];
  const Row& t4 = rows[1];
  std::printf("  multi-study overhead (thread, 4 vs 1): %+.1f%%\n",
              100.0 * (t4.seconds / t1.seconds - 1.0));

  if (!json_path.empty()) write_json(json_path, rows);
  return 0;
}
