// Distributed training on the runtime: scaling and accuracy trade-offs of
// data-parallel local-SGD, the dislib-style workload that the paper's
// conclusion points toward ("other ML workloads that are embarrassingly
// parallel" — here one that is *not* embarrassingly parallel: every round
// synchronises on an averaging task).
#include "bench_common.hpp"
#include "ml/distributed.hpp"

namespace {

using namespace chpo;

}  // namespace

int main() {
  bench::print_header("bench_distributed", "dislib-style distributed training (conclusion/§7)");

  // --- Virtual scaling: shards spread over MN4 nodes --------------------
  std::printf("virtual scaling, 8 rounds of local-SGD (MN4 nodes, 1 shard/node):\n");
  std::printf("%-10s %-14s %-10s\n", "shards", "makespan", "speedup");
  const ml::Dataset tiny = ml::make_mnist_like(64, 16, 1);
  double base = 0;
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(shards);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    ml::DistributedOptions distributed;
    distributed.shards = shards;
    distributed.rounds = 8;
    // A fixed total workload: shard task time shrinks with shard count.
    distributed.shard_task_seconds = 400.0 / shards;
    distributed.shard_constraint = {.cpus = 48};
    ml::distributed_train(runtime, tiny, distributed);
    const double makespan = runtime.now();
    if (shards == 1) base = makespan;
    std::printf("%-10u %-14s %-10.2f\n", shards, format_duration(makespan).c_str(),
                base / makespan);
  }
  std::printf("(each round pays a 1 s averaging barrier: speedup bends away from\n"
              " linear exactly as the synchronisation fraction grows)\n\n");

  // --- Real accuracy: local-SGD vs serial training ----------------------
  std::printf("real training, fixed compute budget (%d total epoch-equivalents):\n", 8);
  std::printf("%-22s %-12s\n", "configuration", "val acc");
  const ml::Dataset ds = ml::make_mnist_like(480, 160, 2);
  {
    ml::TrainConfig serial;
    serial.num_epochs = 8;
    const ml::TrainResult reference = ml::run_experiment(ds, serial);
    std::printf("%-22s %-12.3f\n", "serial (8 epochs)", reference.final_val_accuracy);
  }
  for (const unsigned shards : {2u, 4u}) {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    ml::DistributedOptions distributed;
    distributed.shards = shards;
    distributed.rounds = 4;
    distributed.local_epochs = 2;
    const ml::DistributedResult result = ml::distributed_train(runtime, ds, distributed);
    char label[48];
    std::snprintf(label, sizeof label, "%u shards x 4 rounds", shards);
    std::printf("%-22s %-12.3f\n", label, result.final_val_accuracy);
  }
  std::printf("(local-SGD trades a little accuracy per budget for parallel wall time,\n"
              " the classic data-parallel trade-off)\n");
  return 0;
}
