// Ablation of the runtime's design choices (DESIGN.md §5): scheduling
// policy (fifo/priority/locality), worker-core reservation, and
// parallel-filesystem vs explicit staging — each swept on the Figure-5/6
// workloads to show what the COMPSs-style defaults buy.
#include "bench_common.hpp"

namespace {

using namespace chpo;

double fig5_makespan(const std::string& scheduler, unsigned worker_cores) {
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(1);
  if (worker_cores > 0) {
    options.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
    options.cluster.worker_cores = worker_cores;
  }
  options.scheduler = scheduler;
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));
  bench::submit_grid(runtime, ml::mnist_paper_model(), rt::Constraint{.cpus = 1});
  runtime.barrier();
  return runtime.analyze().makespan();
}

}  // namespace

int main() {
  bench::print_header("bench_scheduler_ablation", "DESIGN.md ablations (scheduler/worker/PFS)");

  std::printf("scheduling policy on the Figure-5 workload (24 usable cores):\n");
  std::printf("%-12s %-14s\n", "policy", "makespan");
  for (const char* policy : {"fifo", "priority", "locality"})
    std::printf("%-12s %-14s\n", policy, format_duration(fig5_makespan(policy, 24)).c_str());
  std::printf("(equal-priority independent tasks: policies coincide — the paper's\n"
              " priority hint only matters with mixed-priority graphs, below)\n\n");

  // Priority hint: one urgent task behind 26 queued ones.
  {
    const auto run = [](bool use_priority_flag) {
      rt::RuntimeOptions options;
      options.cluster = cluster::marenostrum4(1);
      options.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
      options.cluster.worker_cores = 44;  // only 4 usable cores -> real queueing
      options.simulate = true;
      options.sim.execute_bodies = false;
      rt::Runtime runtime(std::move(options));
      for (int i = 0; i < 26; ++i) {
        rt::TaskDef def;
        def.name = "filler";
        def.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 600.0; };
        runtime.submit(def);
      }
      rt::TaskDef urgent;
      urgent.name = "urgent";
      urgent.priority = use_priority_flag;
      urgent.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 60.0; };
      const rt::Future f = runtime.submit(urgent);
      runtime.wait_on(f);
      double end = 0;
      const trace::Analysis analysis = runtime.analyze();
      for (const auto& span : analysis.spans())
        if (span.name == "urgent") end = span.end;
      return end;
    };
    std::printf("priority=True hint (urgent task behind 26 fillers, 4 cores):\n");
    std::printf("  without hint: urgent finishes at %s\n", format_duration(run(false)).c_str());
    std::printf("  with hint   : urgent finishes at %s\n\n", format_duration(run(true)).c_str());
  }

  std::printf("worker-core reservation on one MN4 node (Figure 5 workload):\n");
  std::printf("%-16s %-14s\n", "worker cores", "makespan");
  for (const unsigned worker : {0u, 12u, 24u, 36u})
    std::printf("%-16u %-14s\n", worker, format_duration(fig5_makespan("priority", worker)).c_str());
  std::printf("(the paper's half-node worker costs little here: the 207-min\n"
              " makespan is dominated by the longest single task)\n\n");

  // PFS vs staging: large dataset input, consumers on other nodes.
  {
    struct StagingResult {
      double makespan = 0;
      std::size_t transfers = 0;
      double staged_seconds = 0;
    };
    const auto run = [](bool pfs) {
      rt::RuntimeOptions options;
      options.cluster = cluster::marenostrum4(4);
      options.cluster.has_parallel_fs = pfs;
      options.cluster.network.bandwidth_gbps = 1.0;
      options.simulate = true;
      rt::Runtime runtime(std::move(options));
      // 60k MNIST images ~ 47 MB staged to every node that trains on them.
      const rt::DataId dataset =
          runtime.share_local(std::string("dataset"), 47ull << 20, "mnist");
      for (int i = 0; i < 16; ++i) {
        rt::TaskDef def;
        def.name = "experiment";
        def.constraint = {.cpus = 12};
        def.body = [](rt::TaskContext&) { return std::any(1); };
        def.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 300.0; };
        runtime.submit(def, {{dataset, rt::Direction::In}});
      }
      runtime.barrier();
      StagingResult result;
      result.makespan = runtime.analyze().makespan();
      for (const auto& e : runtime.trace().events()) {
        if (e.kind != trace::EventKind::Transfer) continue;
        ++result.transfers;
        result.staged_seconds += e.t_end - e.t_start;
      }
      return result;
    };
    const StagingResult with_pfs = run(true);
    const StagingResult staged = run(false);
    std::printf("parallel filesystem vs per-node staging (16 tasks, 47 MB input, 1 GB/s):\n");
    std::printf("  GPFS (paper's MN4): makespan %.3f s, %zu transfers\n", with_pfs.makespan,
                with_pfs.transfers);
    std::printf("  explicit staging  : makespan %.3f s, %zu transfers, %.3f s staging\n",
                staged.makespan, staged.transfers, staged.staged_seconds);
    std::printf("  (one copy per node that trains — §4: \"the data required by the task\n"
                "   is copied to the specific node\"; a PFS removes all of them)\n");
  }
  return 0;
}
