// Figure 4: a single task constrained to one core of a 48-core node.
//
// The paper's point is twofold: (a) the runtime enforces CPU affinity even
// though TensorFlow would happily span the node, and (b) that single-core
// task takes ~29 minutes. We run the simulated schedule and print the
// affinity evidence (exactly one core ever busy) and the task duration,
// then verify enforcement on the threaded backend by checking a task's
// internal-parallelism budget equals its constraint.
#include "bench_common.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig4_affinity", "Figure 4 (single task on a single core)");

  // --- Simulated paper-scale run -------------------------------------
  {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(1);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));

    const hpo::Config config =
        json::parse(R"({"optimizer":"SGD","num_epochs":20,"batch_size":64})");
    hpo::DriverOptions driver_options;
    driver_options.workload = ml::mnist_paper_model();
    driver_options.trial_constraint = {.cpus = 1};
    rt::TaskDef def =
        hpo::make_experiment_task(bench::empty_dataset(), config, driver_options, 0);
    def.body = {};  // timeline study only
    runtime.submit(def);
    runtime.barrier();

    const auto analysis = runtime.analyze();
    std::printf("node cores: 48, cores used by the task: %zu (paper: 1)\n",
                analysis.core_usage().size());
    std::printf("task duration: %s (paper: ~29 min)\n",
                format_duration(analysis.makespan()).c_str());
    std::printf("core utilisation of allocated core: %.0f%%\n\n",
                100.0 * analysis.mean_core_utilisation());
  }

  // --- Real enforcement on the threaded backend ----------------------
  {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 8;
    options.cluster = cluster::homogeneous(1, node);
    rt::Runtime runtime(std::move(options));
    rt::TaskDef def;
    def.name = "experiment";
    def.constraint = {.cpus = 1};
    def.body = [](rt::TaskContext& ctx) {
      // The task's tensor kernels receive exactly this thread budget —
      // the affinity the runtime enforces against greedy frameworks.
      return std::any(ctx.thread_budget());
    };
    const unsigned budget = runtime.wait_on_as<unsigned>(runtime.submit(def));
    std::printf("threaded backend: constraint cpus=1 -> internal thread budget=%u\n", budget);
    std::printf("affinity enforced: %s\n", budget == 1 ? "yes" : "NO");
  }
  return 0;
}
