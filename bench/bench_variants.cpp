// @implement / @multinode ablation on the MinoTauro GPU cluster the paper
// also evaluated on (2x K80 per node).
//
// Three ways to run the 27-experiment grid on 4 MinoTauro nodes (8 GPUs,
// 64 cores):
//   1. GPU-only constraint: tasks queue for the 8 GPUs, cores idle;
//   2. CPU-only: every task falls back to cores, GPUs idle;
//   3. @implement GPU + CPU-fallback: the runtime drains GPUs first and
//      spills remaining tasks onto otherwise-idle cores — the "most
//      appropriate implementation considering the resources" of §3.
// Also demonstrates a @multinode data-parallel variant.
#include "bench_common.hpp"
#include "hpo/search_space.hpp"

namespace {

using namespace chpo;

rt::TaskDef experiment_with(const ml::WorkloadModel& workload, const hpo::Config& config,
                            bool gpu_impl, bool cpu_impl) {
  const std::string optimizer = hpo::config_string(config, "optimizer");
  const int epochs = static_cast<int>(hpo::config_int(config, "num_epochs"));
  const int batch = static_cast<int>(hpo::config_int(config, "batch_size"));

  rt::TaskDef def;
  def.name = "experiment";
  const auto gpu_cost = [workload, optimizer, epochs, batch](const rt::Placement& p,
                                                             const cluster::NodeSpec& node) {
    return ml::experiment_seconds(workload, optimizer, epochs, batch, p.cpu_count(),
                                  p.gpu_count(), node);
  };
  const auto cpu_cost = [workload, optimizer, epochs, batch](const rt::Placement& p,
                                                             const cluster::NodeSpec& node) {
    return ml::experiment_seconds(workload, optimizer, epochs, batch, p.cpu_count(), 0, node);
  };
  if (gpu_impl) {
    def.constraint = {.cpus = 4, .gpus = 1};
    def.cost = gpu_cost;
    if (cpu_impl) {
      rt::TaskVariant cpu;
      cpu.label = "cpu-fallback";
      cpu.constraint = {.cpus = 8};
      cpu.cost = cpu_cost;
      def.variants.push_back(std::move(cpu));
    }
  } else {
    def.constraint = {.cpus = 8};
    def.cost = cpu_cost;
  }
  return def;
}

double run_grid(const char* space_json, bool gpu_impl, bool cpu_impl,
                const char* scheduler = "priority") {
  rt::RuntimeOptions options;
  options.cluster = cluster::minotauro(4);
  options.scheduler = scheduler;
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(space_json);
  const ml::WorkloadModel workload = ml::mnist_paper_model();
  for (const auto& config : space.enumerate_grid())
    runtime.submit(experiment_with(workload, config, gpu_impl, cpu_impl));
  runtime.barrier();
  return runtime.analyze().makespan();
}

void compare(const char* label, const char* space_json) {
  const double gpu_only = run_grid(space_json, true, false);
  const double cpu_only = run_grid(space_json, false, false);
  const double both = run_grid(space_json, true, true);
  const double cost_aware = run_grid(space_json, true, true, "cost-aware");
  std::printf("%s\n", label);
  std::printf("  %-30s %-14s\n", "GPU only", format_duration(gpu_only).c_str());
  std::printf("  %-30s %-14s\n", "CPU only", format_duration(cpu_only).c_str());
  std::printf("  %-30s %-14s\n", "@implement, greedy", format_duration(both).c_str());
  std::printf("  %-30s %-14s\n\n", "@implement, cost-aware", format_duration(cost_aware).c_str());
}

}  // namespace

int main() {
  bench::print_header("bench_variants", "Section 3 (@implement / @multinode decorators)");

  std::printf("grids on 4 MinoTauro nodes (8 K80s, 64 cores):\n\n");
  compare("uniform short tasks (27x 20-epoch configs):", R"({
    "optimizer":  ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20],
    "batch_size": [32, 48, 64, 80, 96, 112, 128, 160, 192]
  })");
  compare("heterogeneous tasks (the paper's 20/50/100-epoch grid):", bench::kListing1);
  std::printf("finding: greedy @implement spill onto idle cores roughly breaks even on\n"
              "uniform mixes (a K80 is ~20x a core, so the fallback barely keeps up) and\n"
              "actively loses under a 10x duration spread, where a 100-epoch task can\n"
              "strand on the slow CPU fallback instead of queueing briefly for a GPU.\n"
              "The cost-aware policy (ours; COMPSs is availability-greedy) only spills a\n"
              "task when the fallback is within 2x of its best option, recovering the\n"
              "GPU-only makespan while still spilling when it genuinely helps.\n\n");

  // @multinode: one data-parallel training spanning n nodes.
  std::printf("@multinode data-parallel experiment (4 MN4 nodes):\n");
  std::printf("%-10s %-14s\n", "nodes", "virtual time");
  for (const unsigned nodes : {1u, 2u, 4u}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(4);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    rt::TaskDef def;
    def.name = "distributed_training";
    def.constraint = {.cpus = 48, .nodes = nodes};
    def.cost = [](const rt::Placement& p, const cluster::NodeSpec& node) {
      const ml::WorkloadModel w = ml::cifar_paper_model();
      // Data parallelism: near-linear across nodes with a 5% sync tax/node.
      const double single = ml::cpu_task_seconds(w, 50, 64, p.cpu_count(), node);
      const double n = p.node_count();
      return single / n * (1.0 + 0.05 * (n - 1));
    };
    runtime.submit(def);
    runtime.barrier();
    std::printf("%-10u %-14s\n", nodes, format_duration(runtime.analyze().makespan()).c_str());
  }
  return 0;
}
