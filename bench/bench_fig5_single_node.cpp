// Figure 5: the 27-task MNIST grid on one MareNostrum4 node where the
// COMPSs worker occupies half the cores (24 usable).
//
// Prints the quantities one reads off the paper's Paraver view: how many
// tasks started simultaneously, which cores were reused by the three
// queued tasks, the spread of task durations ("some taking almost half the
// time"), and the ~207-minute makespan — plus the ASCII Gantt itself.
#include <algorithm>
#include <filesystem>

#include "bench_common.hpp"
#include "trace/gantt.hpp"
#include "trace/prv_writer.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig5_single_node", "Figure 5 (multiple tasks on a single node)");

  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(1);
  options.cluster.worker_placement = cluster::WorkerPlacement::SharedCores;
  options.cluster.worker_cores = 24;
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));

  bench::submit_grid(runtime, ml::mnist_paper_model(), rt::Constraint{.cpus = 1});
  runtime.barrier();

  const auto analysis = runtime.analyze();
  std::printf("experiments: %zu (3 optimizers x 3 epochs x 3 batch sizes)\n",
              analysis.task_count());
  std::printf("usable cores: 24 of 48 (worker holds the other half)\n");
  std::printf("tasks started at t=0: %zu   (paper: 24)\n",
              analysis.tasks_started_together(1e-9));
  std::printf("peak concurrency:     %zu   (paper: 24)\n", analysis.peak_concurrency());

  const auto reused = analysis.reused_cores();
  std::printf("cores reused by queued tasks: %zu   (paper: 3)\n", reused.size());
  for (const auto& core : reused) std::printf("  physical core %u ran 2 tasks\n", core.core);

  double shortest = 1e300, longest = 0;
  for (const auto& span : analysis.spans()) {
    shortest = std::min(shortest, span.duration());
    longest = std::max(longest, span.duration());
  }
  std::printf("task durations: %s .. %s (paper: \"some taking almost half the time\")\n",
              format_duration(shortest).c_str(), format_duration(longest).c_str());
  std::printf("application makespan: %s   (paper: 207 minutes)\n",
              format_duration(analysis.makespan()).c_str());
  std::printf("mean utilisation of used cores: %.0f%%\n\n",
              100.0 * analysis.mean_core_utilisation());

  std::printf("%s", trace::render_gantt(runtime.trace().events(),
                                        {.width = 96, .max_rows = 30})
                        .c_str());
  std::printf("\n%s", trace::render_parallelism_profile(runtime.trace().events(), 96, 10).c_str());
  // Traces land in ./traces, not the working directory root (keeps source
  // trees clean when the bench is run from a checkout).
  std::filesystem::create_directories("traces");
  trace::write_prv_files("traces/fig5_single_node", runtime.trace().events(),
                         runtime.cluster_spec());
  std::printf("\nParaver trace: traces/fig5_single_node.prv/.row\n");
  return 0;
}
