// Figure 6: 27 node-exclusive CIFAR tasks on 28 nodes (a) vs 14 nodes (b),
// with a dedicated worker node in both cases.
//
// Reproduces the paper's §6.1 observations: on 28 nodes every task gets
// its own node and all run in parallel; on 14 nodes the application takes
// almost the same time because idle nodes absorb the queued tasks, and
// resource utilisation improves. Also contrasts with the slurm-style
// static block partitioning baseline the paper's §2.2 motivates against.
#include "bench_common.hpp"
#include "hpo/baseline.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig6_multinode", "Figure 6 (multiple tasks on multiple nodes)");
  const ml::WorkloadModel workload = ml::cifar_paper_model();

  struct Row {
    std::size_t nodes;
    double makespan;
    double utilisation;
    std::size_t started_together;
  };
  std::vector<Row> rows;
  for (const std::size_t nodes : {28u, 14u}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(nodes);
    options.cluster.worker_placement = cluster::WorkerPlacement::DedicatedNode;
    options.simulate = true;
    options.sim.execute_bodies = false;
    rt::Runtime runtime(std::move(options));
    bench::submit_grid(runtime, workload, rt::Constraint{.cpus = 48});
    runtime.barrier();
    const auto analysis = runtime.analyze();
    rows.push_back(Row{nodes, analysis.makespan(),
                       analysis.utilisation_vs_capacity((static_cast<unsigned>(nodes) - 1) * 48),
                       analysis.tasks_started_together(1e-9)});
  }

  std::printf("%-8s %-14s %-12s %-16s\n", "nodes", "makespan", "util(%)", "parallel at t=0");
  for (const auto& r : rows)
    std::printf("%-8zu %-14s %-12.1f %-16zu\n", r.nodes, format_duration(r.makespan).c_str(),
                100.0 * r.utilisation, r.started_together);

  std::printf("\n14-node / 28-node makespan ratio: %.2f (paper: \"almost the same\")\n",
              rows[1].makespan / rows[0].makespan);
  std::printf("utilisation gain at 14 nodes: %.1fx (paper: \"better utilisation\")\n",
              rows[1].utilisation / rows[0].utilisation);

  // Static partitioning baselines (the slurm-style alternative of §2.2):
  // contiguous blocks are what a naive per-node script does; round-robin is
  // the strong static variant. Neither adapts to stragglers or failures.
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(bench::kListing1);
  const auto configs = space.enumerate_grid();
  const double contiguous = hpo::static_partition_contiguous_seconds(
      configs, workload, 13, 48, cluster::marenostrum4_node());
  const double round_robin =
      hpo::static_partition_seconds(configs, workload, 13, 48, cluster::marenostrum4_node());
  std::printf("\nstatic baselines on 13 nodes (dynamic runtime: %s):\n",
              format_duration(rows[1].makespan).c_str());
  std::printf("  contiguous blocks : %s (%+.0f%% vs dynamic)\n",
              format_duration(contiguous).c_str(),
              100.0 * (contiguous / rows[1].makespan - 1.0));
  std::printf("  round-robin deal  : %s (%+.0f%% vs dynamic; static = no adaptation\n"
              "                       to stragglers, failures, or unknown durations)\n",
              format_duration(round_robin).c_str(),
              100.0 * (round_robin / rows[1].makespan - 1.0));
  return 0;
}
