// Figure 3: the dynamic task graph of an HPO application.
//
// Rebuilds the paper's sample application — a chain of experiment tasks
// feeding a visualisation task per experiment, all synchronised for a
// final plot — and prints the graph statistics plus the Graphviz DOT with
// the d{n}v{m} edge labels shown in the figure.
#include "bench_common.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig3_taskgraph", "Figure 3 (tasks graph)");

  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(1);
  options.simulate = true;
  rt::Runtime runtime(std::move(options));

  // 10 experiments; each feeds a visualisation task (like the paper's
  // graph.experiment -> graph.visualisation pairs), all awaited for a plot.
  std::vector<rt::Future> experiment_results;
  std::vector<rt::Future> visualised;
  for (int i = 0; i < 10; ++i) {
    rt::TaskDef experiment;
    experiment.name = "graph.experiment";
    experiment.body = [i](rt::TaskContext&) { return std::any(0.9 - 0.01 * i); };
    const rt::Future result = runtime.submit(experiment);
    experiment_results.push_back(result);

    rt::TaskDef visualisation;
    visualisation.name = "graph.visualisation";
    visualisation.body = [](rt::TaskContext& ctx) { return std::any(ctx.read<double>(0)); };
    visualised.push_back(
        runtime.submit(visualisation, {{result.data, rt::Direction::In}}));
  }
  for (auto& f : visualised) runtime.wait_on(f);

  const auto& graph = runtime.graph();
  std::printf("tasks: %zu, acyclic: %s, critical path: %zu\n", graph.size(),
              graph.is_acyclic() ? "yes" : "no", graph.critical_path_length());

  std::size_t data_edges = 0;
  for (std::size_t i = 0; i < graph.size(); ++i)
    data_edges += graph.task(i).predecessors.size();
  std::printf("dependency edges: %zu (paper: one d(n)v(2) edge per pair)\n\n", data_edges);
  std::printf("%s", runtime.graph_dot().c_str());
  return 0;
}
