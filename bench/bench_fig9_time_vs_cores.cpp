// Figure 9: "Time vs Cores" — total HPO wall time as a function of cores
// per task, for (a) MNIST on 1 and 2 MareNostrum4 CPU nodes and (b) CIFAR
// on a POWER9 node with 4 V100 GPUs and a growing CPU share per task.
//
// Shape targets from the paper's §6.1:
//  * 1 CPU node: time falls up to ~4 cores/task, then rises again as
//    tasks start queueing for cores;
//  * 2 CPU nodes: time keeps decreasing (a bigger pool);
//  * GPU node with 1 core/task is slower than the CPU node (GPU starved
//    by preprocessing); with more cores the whole HPO drops under an hour.
#include "bench_common.hpp"

namespace {

using namespace chpo;

double run_cpu(std::size_t nodes, unsigned cpus_per_task) {
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(nodes);
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));
  bench::submit_grid(runtime, ml::mnist_paper_model(),
                     rt::Constraint{.cpus = cpus_per_task});
  runtime.barrier();
  return runtime.analyze().makespan();
}

double run_gpu(unsigned cpus_per_task) {
  rt::RuntimeOptions options;
  options.cluster = cluster::power9(1);
  options.simulate = true;
  options.sim.execute_bodies = false;
  rt::Runtime runtime(std::move(options));
  bench::submit_grid(runtime, ml::cifar_paper_model(),
                     rt::Constraint{.cpus = cpus_per_task, .gpus = 1});
  runtime.barrier();
  return runtime.analyze().makespan();
}

}  // namespace

int main() {
  bench::print_header("bench_fig9_time_vs_cores", "Figure 9 (Time vs Cores)");

  std::printf("MNIST grid on MareNostrum4 (27 tasks, cores per task swept):\n");
  std::printf("%-14s %-16s %-16s\n", "cores/task", "1 node", "2 nodes");
  double best1 = 1e300, last1 = 0;
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
    const double t1 = run_cpu(1, cores);
    const double t2 = run_cpu(2, cores);
    std::printf("%-14u %-16s %-16s\n", cores, format_duration(t1).c_str(),
                format_duration(t2).c_str());
    best1 = std::min(best1, t1);
    last1 = t1;
  }
  std::printf("single node: minimum %s, 48-core point %s -> %s (paper: rises after ~4)\n\n",
              format_duration(best1).c_str(), format_duration(last1).c_str(),
              last1 > best1 * 1.2 ? "rises again" : "no rise (UNEXPECTED)");

  std::printf("CIFAR grid on POWER9 4xV100 (1 GPU per task, CPU cores swept):\n");
  std::printf("%-14s %-16s\n", "cores/task", "makespan");
  double starved = 0, fed = 0;
  for (const unsigned cores : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double t = run_gpu(cores);
    std::printf("%-14u %-16s\n", cores, format_duration(t).c_str());
    if (cores == 1) starved = t;
    fed = t;
  }
  const double cpu_node_ref = run_cpu(1, 1);
  std::printf("\nGPU node @1 core: %s vs CPU node run: %s (paper: GPU slower when starved)\n",
              format_duration(starved).c_str(), format_duration(cpu_node_ref).c_str());
  std::printf("GPU node @32 cores: %s (paper: \"less than an hour\")\n",
              format_duration(fed).c_str());
  std::printf("starved/CPU ratio: %.2f (>1 expected), fed under 1 h: %s\n",
              starved / cpu_node_ref, fed < 3600 ? "yes" : "NO");
  return 0;
}
