// Shared helpers for the figure-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <string>

#include "hpo/driver.hpp"
#include "hpo/search_space.hpp"
#include "ml/cost_model.hpp"
#include "runtime/runtime.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace chpo::bench {

inline constexpr const char* kListing1 = R"({
  "optimizer":  ["Adam", "SGD", "RMSprop"],
  "num_epochs": [20, 50, 100],
  "batch_size": [32, 64, 128]
})";

/// Shared empty dataset for cost-only (simulated) experiment tasks.
inline const ml::Dataset& empty_dataset() {
  static const ml::Dataset dataset{};
  return dataset;
}

inline void print_header(const std::string& title, const std::string& paper_reference) {
  set_log_level(LogLevel::Warn);  // keep figure tables clean on stdout
  std::printf("============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_reference.c_str());
  std::printf("============================================================\n");
}

/// Submit the full Listing-1 grid as cost-only experiment tasks.
inline void submit_grid(rt::Runtime& runtime, const ml::WorkloadModel& workload,
                        const rt::Constraint& constraint) {
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(kListing1);
  for (const auto& config : space.enumerate_grid()) {
    hpo::DriverOptions options;
    options.workload = workload;
    options.trial_constraint = constraint;
    runtime.submit(hpo::make_experiment_task(empty_dataset(), config, options, 0));
  }
}

}  // namespace chpo::bench
