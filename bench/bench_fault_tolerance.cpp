// §3/§4 fault tolerance: makespan as a function of the injected per-attempt
// failure probability, and the cost of a node death at various times —
// quantifying what the paper's retry policy buys.
#include "bench_common.hpp"

namespace {

using namespace chpo;

double run_with_failures(double failure_prob, std::uint64_t seed) {
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(2);
  options.simulate = true;
  options.sim.execute_bodies = false;
  options.fault_policy.max_attempts = 10;
  options.injector = rt::FaultInjector(seed, failure_prob);
  rt::Runtime runtime(std::move(options));
  bench::submit_grid(runtime, ml::mnist_paper_model(), rt::Constraint{.cpus = 4});
  runtime.barrier();
  return runtime.analyze().makespan();
}

}  // namespace

int main() {
  bench::print_header("bench_fault_tolerance", "Sections 3-4 (fault tolerance policy)");

  std::printf("27-task MNIST grid, 2 MN4 nodes, 4 cores/task, failure prob swept:\n");
  std::printf("%-12s %-14s %-10s\n", "p(fail)", "makespan", "vs p=0");
  const double baseline = run_with_failures(0.0, 1);
  for (const double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    double total = 0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep)
      total += run_with_failures(p, static_cast<std::uint64_t>(100 * p) + rep + 1);
    const double mean = total / kReps;
    std::printf("%-12.2f %-14s %+.1f%%\n", p, format_duration(mean).c_str(),
                100.0 * (mean / baseline - 1.0));
  }

  // Kill the node running the longest task (grid index 6 = Adam/100ep/b32
  // lands on node 7: node 0 is the worker) — the worst-case victim.
  std::printf("\nnode death during the Figure-6 run (28 nodes, node 7 = longest task):\n");
  std::printf("%-16s %-14s %-10s\n", "death time", "makespan", "retries");
  for (const double when : {-1.0, 60.0, 600.0, 1800.0}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(28);
    options.cluster.worker_placement = cluster::WorkerPlacement::DedicatedNode;
    options.simulate = true;
    options.sim.execute_bodies = false;
    if (when >= 0) options.injector.schedule_node_failure(7, when);
    rt::Runtime runtime(std::move(options));
    bench::submit_grid(runtime, ml::cifar_paper_model(), rt::Constraint{.cpus = 48});
    runtime.barrier();
    const auto analysis = runtime.analyze();
    std::printf("%-16s %-14s %-10zu\n",
                when < 0 ? "none" : format_duration(when).c_str(),
                format_duration(analysis.makespan()).c_str(), analysis.retry_count());
  }
  std::printf("\n(the victim's in-flight work is lost and re-run on the first node to\n"
              " free up — later deaths of the critical task cost proportionally more;\n"
              " every other node's finished work survives untouched)\n");

  // Stragglers, the failure mode retries cannot see: one 10x slower node
  // delays the whole grid unless speculation duplicates its attempts.
  std::printf("\nstraggler node (3 nodes x 9 cores, 27 tasks of 100 s, node 0 is 10x slower):\n");
  std::printf("%-14s %-14s %-10s\n", "speculation", "makespan", "spec wins");
  for (const bool speculate : {false, true}) {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 9;
    options.cluster = cluster::homogeneous(3, node);
    options.simulate = true;
    options.sim.execute_bodies = false;
    options.speculation.enabled = speculate;
    options.speculation.min_observations = 3;
    rt::Runtime runtime(std::move(options));
    rt::TaskDef trial;
    trial.name = "experiment";
    trial.constraint = {.cpus = 1};
    trial.body = [](rt::TaskContext&) { return std::any(0); };
    trial.cost = [](const rt::Placement& p, const cluster::NodeSpec&) {
      return p.node == 0 ? 1000.0 : 100.0;
    };
    for (int i = 0; i < 27; ++i) runtime.submit(trial);
    runtime.barrier();
    int wins = 0;
    for (const auto& e : runtime.trace().events())
      wins += e.kind == trace::EventKind::SpeculativeWin;
    std::printf("%-14s %-14s %-10d\n", speculate ? "on" : "off",
                format_duration(runtime.analyze().makespan()).c_str(), wins);
  }
  return 0;
}
