// §3/§4 fault tolerance: makespan as a function of the injected per-attempt
// failure probability, and the cost of a node death at various times —
// quantifying what the paper's retry policy buys.
#include "bench_common.hpp"

namespace {

using namespace chpo;

double run_with_failures(double failure_prob, std::uint64_t seed) {
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(2);
  options.simulate = true;
  options.sim.execute_bodies = false;
  options.fault_policy.max_attempts = 10;
  options.injector = rt::FaultInjector(seed, failure_prob);
  rt::Runtime runtime(std::move(options));
  bench::submit_grid(runtime, ml::mnist_paper_model(), rt::Constraint{.cpus = 4});
  runtime.barrier();
  return runtime.analyze().makespan();
}

struct LineageRun {
  double makespan;
  std::size_t recoveries;
};

// A two-stage pipeline on a cluster without a parallel filesystem: stage
// outputs live only on the producing node, so a node death mid-run orphans
// committed data and forces lineage recomputation (not just retries).
LineageRun run_lineage(double death_time, std::size_t nodes = 4) {
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.cpus = 4;
  options.cluster = cluster::homogeneous(nodes, node);
  options.cluster.has_parallel_fs = false;
  options.scheduler = "locality";
  options.simulate = true;
  if (death_time > 0) options.injector.schedule_node_failure(1, death_time);
  rt::Runtime runtime(std::move(options));

  rt::TaskDef pre;
  pre.name = "preprocess";
  pre.constraint = {.cpus = 1};
  pre.body = [](rt::TaskContext&) { return std::any(1.0); };
  pre.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 120.0; };
  rt::TaskDef train;
  train.name = "train";
  train.constraint = {.cpus = 1};
  train.body = [](rt::TaskContext& ctx) { return std::any(ctx.read<double>(0) + 1.0); };
  train.cost = [](const rt::Placement&, const cluster::NodeSpec&) { return 240.0; };

  for (int i = 0; i < 16; ++i) {
    const rt::Future stage = runtime.submit(pre);
    runtime.submit(train, {{stage.data, rt::Direction::In}});
  }
  runtime.barrier();
  return {runtime.analyze().makespan(), runtime.lineage_recoveries()};
}

}  // namespace

int main() {
  bench::print_header("bench_fault_tolerance", "Sections 3-4 (fault tolerance policy)");

  std::printf("27-task MNIST grid, 2 MN4 nodes, 4 cores/task, failure prob swept:\n");
  std::printf("%-12s %-14s %-10s\n", "p(fail)", "makespan", "vs p=0");
  const double baseline = run_with_failures(0.0, 1);
  for (const double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    double total = 0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep)
      total += run_with_failures(p, static_cast<std::uint64_t>(100 * p) + rep + 1);
    const double mean = total / kReps;
    std::printf("%-12.2f %-14s %+.1f%%\n", p, format_duration(mean).c_str(),
                100.0 * (mean / baseline - 1.0));
  }

  // Kill the node running the longest task (grid index 6 = Adam/100ep/b32
  // lands on node 7: node 0 is the worker) — the worst-case victim.
  std::printf("\nnode death during the Figure-6 run (28 nodes, node 7 = longest task):\n");
  std::printf("%-16s %-14s %-10s\n", "death time", "makespan", "retries");
  for (const double when : {-1.0, 60.0, 600.0, 1800.0}) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(28);
    options.cluster.worker_placement = cluster::WorkerPlacement::DedicatedNode;
    options.simulate = true;
    options.sim.execute_bodies = false;
    if (when >= 0) options.injector.schedule_node_failure(7, when);
    rt::Runtime runtime(std::move(options));
    bench::submit_grid(runtime, ml::cifar_paper_model(), rt::Constraint{.cpus = 48});
    runtime.barrier();
    const auto analysis = runtime.analyze();
    std::printf("%-16s %-14s %-10zu\n",
                when < 0 ? "none" : format_duration(when).c_str(),
                format_duration(analysis.makespan()).c_str(), analysis.retry_count());
  }
  std::printf("\n(the victim's in-flight work is lost and re-run on the first node to\n"
              " free up — later deaths of the critical task cost proportionally more;\n"
              " every other node's finished work survives untouched)\n");

  // Stragglers, the failure mode retries cannot see: one 10x slower node
  // delays the whole grid unless speculation duplicates its attempts.
  std::printf("\nstraggler node (3 nodes x 9 cores, 27 tasks of 100 s, node 0 is 10x slower):\n");
  std::printf("%-14s %-14s %-10s\n", "speculation", "makespan", "spec wins");
  for (const bool speculate : {false, true}) {
    rt::RuntimeOptions options;
    cluster::NodeSpec node;
    node.cpus = 9;
    options.cluster = cluster::homogeneous(3, node);
    options.simulate = true;
    options.sim.execute_bodies = false;
    options.speculation.enabled = speculate;
    options.speculation.min_observations = 3;
    rt::Runtime runtime(std::move(options));
    rt::TaskDef trial;
    trial.name = "experiment";
    trial.constraint = {.cpus = 1};
    trial.body = [](rt::TaskContext&) { return std::any(0); };
    trial.cost = [](const rt::Placement& p, const cluster::NodeSpec&) {
      return p.node == 0 ? 1000.0 : 100.0;
    };
    for (int i = 0; i < 27; ++i) runtime.submit(trial);
    runtime.barrier();
    int wins = 0;
    for (const auto& e : runtime.trace().events())
      wins += e.kind == trace::EventKind::SpeculativeWin;
    std::printf("%-14s %-14s %-10d\n", speculate ? "on" : "off",
                format_duration(runtime.analyze().makespan()).c_str(), wins);
  }

  // Lineage recovery: lose a node (and every sole replica it held) at
  // 25/50/75% of the failure-free makespan. "full restart" is the naive
  // alternative — scrap the run at the death and start over, costing
  // death_time + baseline; lineage replays only the orphaned chains.
  std::printf("\nlineage recovery vs full restart (no parallel FS, 4x4-core nodes,\n"
              "16 preprocess[2 min] -> 16 train[4 min] pairs, node 1 dies mid-run):\n");
  std::printf("%-12s %-14s %-12s %-14s %-10s\n", "death time", "makespan", "recomputes",
              "full restart", "saving");
  const double lineage_baseline = run_lineage(-1.0).makespan;
  // The death is permanent, so a from-scratch restart runs on the three
  // survivors: restart cost = death time + the 3-node failure-free makespan.
  const double restart_baseline = run_lineage(-1.0, 3).makespan;
  for (const double frac : {0.25, 0.50, 0.75}) {
    const double when = frac * lineage_baseline;
    const LineageRun run = run_lineage(when);
    const double restart = when + restart_baseline;
    std::printf("%-12s %-14s %-12zu %-14s %.1f%%\n", format_duration(when).c_str(),
                format_duration(run.makespan).c_str(), run.recoveries,
                format_duration(restart).c_str(), 100.0 * (1.0 - run.makespan / restart));
  }
  std::printf("\n(recomputes = committed stage outputs whose only replica died and\n"
              " were re-executed through lineage; surviving nodes' data is reused)\n");
  return 0;
}
