// Straggler mitigation: makespan of a 27-task grid on a cluster where one
// node is uniformly slower, with speculative execution off vs on. The
// speculation layer detects attempts exceeding the straggler threshold
// (2x the 0.75-quantile of observed durations) and launches duplicates on
// healthy nodes; the first attempt to finish wins.
#include "bench_common.hpp"

namespace {

using namespace chpo;

struct SpecResult {
  double makespan = 0.0;
  int stragglers = 0;
  int duplicates = 0;
  int wins = 0;
};

SpecResult run_grid(double slow_factor, bool speculate) {
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.cpus = 9;
  options.cluster = cluster::homogeneous(3, node);
  options.simulate = true;
  options.sim.execute_bodies = false;
  options.speculation.enabled = speculate;
  options.speculation.min_observations = 3;
  options.speculation.straggler_multiplier = 2.0;
  rt::Runtime runtime(std::move(options));

  rt::TaskDef trial;
  trial.name = "experiment";
  trial.constraint = {.cpus = 1};
  trial.body = [](rt::TaskContext&) { return std::any(0); };
  trial.cost = [slow_factor](const rt::Placement& p, const cluster::NodeSpec&) {
    return p.node == 0 ? 100.0 * slow_factor : 100.0;  // node 0 straggles
  };
  for (int i = 0; i < 27; ++i) runtime.submit(trial);
  runtime.barrier();

  SpecResult result;
  result.makespan = runtime.analyze().makespan();
  for (const auto& e : runtime.trace().events()) {
    result.stragglers += e.kind == trace::EventKind::StragglerDetected;
    result.duplicates += e.kind == trace::EventKind::SpeculativeLaunch;
    result.wins += e.kind == trace::EventKind::SpeculativeWin;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_speculation", "straggler mitigation (speculative execution)");

  std::printf("27-task grid, 3 nodes x 9 cores, 100 s/task, node 0 slowed by a factor;\n");
  std::printf("speculation: quantile 0.75, straggler threshold 2x, max 1 duplicate/task\n\n");
  std::printf("%-8s %-14s %-14s %-9s %-7s %-7s %-6s\n", "slow_x", "spec off", "spec on",
              "speedup", "strag", "dups", "wins");
  for (const double factor : {2.0, 5.0, 10.0, 20.0}) {
    const SpecResult off = run_grid(factor, false);
    const SpecResult on = run_grid(factor, true);
    std::printf("%-8.0f %-14s %-14s %-9.2f %-7d %-7d %-6d\n", factor,
                format_duration(off.makespan).c_str(), format_duration(on.makespan).c_str(),
                off.makespan / on.makespan, on.stragglers, on.duplicates, on.wins);
  }
  std::printf("\n(without speculation the slow node's nine tasks gate the makespan at\n"
              " 100*slow_x; with it, duplicates launch on the healthy nodes once the\n"
              " 2x-quantile threshold trips and the originals are discarded)\n");
  return 0;
}
