// Figure 7: MNIST hyperparameter optimisation results under grid search —
// the per-config validation accuracies the paper plots after the full
// application completes.
//
// Real training on the synthetic MNIST stand-in, scaled down (epochs/10)
// to stay laptop-sized. The paper's qualitative claims checked here:
// "most of the combinations of hyperparameters are able to attain above
// 90% accuracy" and "MNIST generalises well after just a few epochs", and
// the consequent value of early stopping.
#include <algorithm>

#include "bench_common.hpp"
#include "hpo/algorithms.hpp"
#include "hpo/importance.hpp"
#include "hpo/report.hpp"
#include "ml/dataset.hpp"

int main() {
  using namespace chpo;
  bench::print_header("bench_fig7_mnist_hpo", "Figure 7 (MNIST HPO using grid search)");

  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "local";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(1, node);
  rt::Runtime runtime(std::move(options));

  // Slightly larger/easier than the library default so that accuracy
  // saturates like real MNIST does ("most combinations above 90%").
  ml::SyntheticSpec spec;
  spec.name = "mnist-like";
  spec.n_train = 1200;
  spec.n_test = 200;
  spec.difficulty = 0.22;
  spec.seed = 42;
  const ml::Dataset dataset = ml::make_synthetic(spec);
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(bench::kListing1);

  hpo::DriverOptions driver_options;
  driver_options.trial_constraint = {.cpus = 1};
  driver_options.epoch_divisor = 10;  // paper epochs 20/50/100 -> 2/5/10
  driver_options.seed = 42;
  hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
  hpo::GridSearch grid(space);
  const hpo::HpoOutcome outcome = driver.run(grid);

  std::printf("%s\n", hpo::trials_table(outcome.trials).c_str());
  std::printf("%s\n", hpo::accuracy_chart(outcome.trials, 80, 16).c_str());

  std::printf("%s\n",
              hpo::importance_table(hpo::hyperparameter_importance(outcome.trials)).c_str());

  std::size_t above_90 = 0;
  for (const auto& trial : outcome.trials)
    if (!trial.failed && trial.result.best_val_accuracy > 0.9) ++above_90;
  std::printf("configs above 90%% accuracy: %zu / %zu (paper: \"most\")\n", above_90,
              outcome.trials.size());
  std::printf("%s", hpo::outcome_summary(outcome).c_str());

  // Early-stopping value (§6.2): epochs saved if each trial stops at 90%.
  rt::RuntimeOptions es_options;
  es_options.cluster = cluster::homogeneous(1, node);
  rt::Runtime es_runtime(std::move(es_options));
  hpo::DriverOptions es_driver_options = driver_options;
  es_driver_options.trial_target_accuracy = 0.9;
  hpo::HpoDriver es_driver(es_runtime.main_study(), dataset, es_driver_options);
  hpo::GridSearch grid2(space);
  const hpo::HpoOutcome with_early_stop = es_driver.run(grid2);
  long epochs_full = 0, epochs_early = 0;
  for (std::size_t i = 0; i < outcome.trials.size(); ++i) {
    epochs_full += outcome.trials[i].result.epochs_run;
    epochs_early += with_early_stop.trials[i].result.epochs_run;
  }
  std::printf("\nearly stopping at 90%%: %ld epochs vs %ld (%.0f%% of the work saved)\n",
              epochs_early, epochs_full,
              100.0 * (1.0 - static_cast<double>(epochs_early) / epochs_full));
  return 0;
}
