// In-order vs as-completed result consumption under whole-HPO early stop.
//
// The paper's §6.1 claim is that the runtime can "stop as soon as one task
// achieves a specified accuracy". How much that saves depends on *how the
// driver consumes results*: the old wait_on loop observed trials in
// submission order, so a fast trial submitted late sat unobserved behind
// slow early trials (head-of-line blocking); the completion-driven loop
// (wait_any) observes it the moment it finishes and cancels the rest.
//
// Workload: the Figure-9 shape — one MareNostrum4 node, 4 cores per trial
// (12 concurrent), trial durations skewed across an order of magnitude,
// and the threshold-crossing trial short but submitted late. Virtual time,
// so the numbers are exact queue dynamics, not noise.
#include "bench_common.hpp"

#include <algorithm>
#include <vector>

namespace {

using namespace chpo;

struct TrialScript {
  double seconds;   ///< virtual duration on 4 cores
  double accuracy;  ///< validation accuracy the trial "reaches"
};

/// Skewed-duration script: durations spread over [30, 300] with a
/// deterministic shuffle; only one trial (short, late index) crosses the
/// stop threshold.
std::vector<TrialScript> make_script(std::size_t n, std::size_t winner_index) {
  std::vector<TrialScript> script(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double unit = static_cast<double>((i * 7919u + 13u) % 97u) / 96.0;
    script[i].seconds = 30.0 + 270.0 * unit;
    script[i].accuracy = 0.40 + 0.30 * unit;  // below the 0.9 target
  }
  script[winner_index].seconds = 35.0;
  script[winner_index].accuracy = 0.93;
  return script;
}

rt::Runtime make_runtime() {
  rt::RuntimeOptions options;
  options.cluster = cluster::marenostrum4(1);
  options.simulate = true;
  return rt::Runtime(std::move(options));
}

std::vector<rt::Future> submit_all(rt::Runtime& runtime, const std::vector<TrialScript>& script) {
  std::vector<rt::Future> futures;
  futures.reserve(script.size());
  for (const TrialScript& trial : script) {
    rt::TaskDef def;
    def.name = "experiment";
    def.constraint = {.cpus = 4};
    def.body = [accuracy = trial.accuracy](rt::TaskContext&) { return std::any(accuracy); };
    def.cost = [seconds = trial.seconds](const rt::Placement&, const cluster::NodeSpec&) {
      return seconds;
    };
    futures.push_back(runtime.submit(def));
  }
  return futures;
}

struct StopStats {
  double stop_time = 0.0;       ///< virtual seconds until the driver observed the crossing
  std::size_t consumed = 0;     ///< results waited on before stopping
  std::size_t cancelled = 0;    ///< outstanding trials cancelled (as-completed only)
};

/// The pre-refactor driver loop: results consumed strictly in submission
/// order with blocking wait_on.
StopStats consume_in_order(const std::vector<TrialScript>& script, double target) {
  rt::Runtime runtime = make_runtime();
  const std::vector<rt::Future> futures = submit_all(runtime, script);
  StopStats stats;
  for (const rt::Future& f : futures) {
    const double accuracy = runtime.wait_on_as<double>(f);
    ++stats.consumed;
    if (accuracy >= target) break;
  }
  stats.stop_time = runtime.now();
  return stats;
}

/// The completion-driven loop: wait_any in completion order, cancel the
/// rest on the first crossing.
StopStats consume_as_completed(const std::vector<TrialScript>& script, double target) {
  rt::Runtime runtime = make_runtime();
  std::vector<rt::Future> remaining = submit_all(runtime, script);
  StopStats stats;
  while (!remaining.empty()) {
    const rt::Future done = runtime.wait_any(remaining);
    const double accuracy = runtime.wait_on_as<double>(done);
    ++stats.consumed;
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [&](const rt::Future& f) { return f.producer == done.producer; }),
                    remaining.end());
    if (accuracy >= target) {
      for (const rt::Future& f : remaining) runtime.cancel(f);
      stats.cancelled = remaining.size();
      break;
    }
  }
  stats.stop_time = runtime.now();
  return stats;
}

}  // namespace

int main() {
  bench::print_header("bench_async_driver",
                      "§6.1 early stop: in-order vs completion-driven consumption");

  constexpr double kTarget = 0.9;
  std::printf("%-8s %-10s %-14s %-12s %-14s %-12s %-10s\n", "trials", "winner@", "in-order (s)",
              "consumed", "as-compl. (s)", "consumed", "speedup");

  bool all_strictly_earlier = true;
  for (const std::size_t n : {12u, 24u, 48u}) {
    const std::size_t winner = n - 3;  // short trial near the end of the queue
    const std::vector<TrialScript> script = make_script(n, winner);
    const StopStats ordered = consume_in_order(script, kTarget);
    const StopStats completed = consume_as_completed(script, kTarget);
    all_strictly_earlier = all_strictly_earlier && completed.stop_time < ordered.stop_time;
    std::printf("%-8zu %-10zu %-14.1f %-12zu %-14.1f %-12zu %-9.2fx\n", n, winner,
                ordered.stop_time, ordered.consumed, completed.stop_time, completed.consumed,
                ordered.stop_time / completed.stop_time);
  }

  std::printf("\ncompletion-driven stop strictly earlier on every size: %s\n",
              all_strictly_earlier ? "yes" : "NO (UNEXPECTED)");
  return all_strictly_earlier ? 0 : 1;
}
