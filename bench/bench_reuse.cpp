// bench_reuse — the Listing-1 grid with and without cross-trial reuse.
//
// The paper's grid (Listing 1) varies num_epochs in {20, 50, 100} for each
// of the 9 (optimizer, batch_size) combinations: without reuse each group
// trains 170 epochs, with stage merging it trains 100 (the 20- and
// 50-epoch trials are interior checkpoints of the 100-epoch chain) — a
// 1.70x compute collapse, which part 1 measures as virtual makespan on a
// saturated node. Parts 2 and 3 run real training: warm-cache reruns prune
// to pure replay, and a session that *extends* the epoch axis resumes the
// cached chains instead of retraining from scratch.
#include <chrono>
#include <filesystem>

#include "bench_common.hpp"
#include "hpo/report.hpp"
#include "reuse/planner.hpp"
#include "reuse/result_cache.hpp"

namespace {

using namespace chpo;
namespace fs = std::filesystem;

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(clock::now().time_since_epoch()).count();
}

rt::RuntimeOptions small_node(bool simulate) {
  rt::RuntimeOptions opts;
  cluster::NodeSpec node;
  node.name = "bench";
  node.cpus = 4;
  opts.cluster = cluster::homogeneous(1, node);
  opts.simulate = simulate;
  if (simulate) opts.sim.execute_bodies = false;
  return opts;
}

// ---------------------------------------------------------------- part 1

/// Cost-only simulation of the Listing-1 grid on a saturated 4-core node:
/// virtual makespan tracks total planned work.
std::pair<double, reuse::ReuseReport> simulate_grid(bool merge) {
  rt::Runtime runtime(small_node(/*simulate=*/true));
  hpo::DriverOptions options;
  options.workload = ml::mnist_paper_model();
  options.epoch_divisor = 1;
  options.reuse.enabled = true;
  options.reuse.merge = merge;

  std::vector<reuse::TrialRequest> requests;
  const hpo::SearchSpace space = hpo::SearchSpace::from_json_text(bench::kListing1);
  for (const auto& config : space.enumerate_grid()) {
    const int index = static_cast<int>(requests.size());
    requests.push_back({index, hpo::experiment_train_config(config, options, index)});
  }

  reuse::StageExecutor executor(runtime.main_study(), bench::empty_dataset(), options.reuse,
                                rt::Constraint{.cpus = 1}, options.workload, nullptr);
  executor.submit(requests);
  runtime.barrier();
  return {runtime.analyze().makespan(), executor.report()};
}

// ------------------------------------------------------------ parts 2 & 3

struct RealRun {
  double wall_ms = 0.0;
  hpo::HpoOutcome outcome;
};

RealRun run_real(const ml::Dataset& dataset, const char* space_json, bool merge,
                 const std::string& cache_dir) {
  const double t0 = now_ms();
  rt::Runtime runtime(small_node(/*simulate=*/false));
  hpo::DriverOptions options;
  options.epoch_divisor = 1;
  options.seed = 17;
  options.reuse.enabled = true;
  options.reuse.merge = merge;
  options.reuse.cache_dir = cache_dir;
  hpo::HpoDriver driver(runtime.main_study(), dataset, options);
  hpo::GridSearch grid(hpo::SearchSpace::from_json_text(space_json));
  RealRun run;
  run.outcome = driver.run(grid);
  run.wall_ms = now_ms() - t0;
  return run;
}

constexpr const char* kSmallGrid = R"({
  "learning_rate": [0.01, 0.02, 0.05],
  "num_epochs": [2, 6],
  "batch_size": [16]
})";

constexpr const char* kSeedGrid = R"({
  "learning_rate": [0.01, 0.02, 0.05],
  "num_epochs": [2, 4],
  "batch_size": [16]
})";

constexpr const char* kExtendedGrid = R"({
  "learning_rate": [0.01, 0.02, 0.05],
  "num_epochs": [2, 4, 8],
  "batch_size": [16]
})";

}  // namespace

int main() {
  bench::print_header("bench_reuse",
                      "Listing 1 grid with cross-trial reuse (stage trees + result cache)");

  // Part 1: virtual makespan, unmerged vs merged stage trees.
  const auto [unmerged_span, unmerged_report] = simulate_grid(/*merge=*/false);
  const auto [merged_span, merged_report] = simulate_grid(/*merge=*/true);
  std::printf("part 1: Listing-1 grid, cost-only simulation, one 4-core node\n");
  std::printf("  %-22s %10s %14s %14s\n", "plan", "epochs", "stage tasks", "makespan");
  std::printf("  %-22s %10ld %14zu %14s\n", "unmerged (baseline)", unmerged_report.planned_epochs,
              unmerged_report.stages, format_duration(unmerged_span).c_str());
  std::printf("  %-22s %10ld %14zu %14s\n", "merged stage tree", merged_report.planned_epochs,
              merged_report.stages, format_duration(merged_span).c_str());
  std::printf("  compute collapse: %.2fx epochs, %.2fx virtual makespan (ceiling 170/100 = 1.70x)\n\n",
              static_cast<double>(unmerged_report.planned_epochs) /
                  static_cast<double>(merged_report.planned_epochs),
              unmerged_span / merged_span);

  // Part 2: real training — merged vs unmerged, then a warm-cache rerun.
  const ml::Dataset dataset = ml::make_mnist_like(240, 80, 5);
  const fs::path cache = fs::temp_directory_path() / "chpo_bench_reuse_cache";
  fs::remove_all(cache);

  const RealRun unmerged = run_real(dataset, kSmallGrid, /*merge=*/false, "");
  const RealRun cold = run_real(dataset, kSmallGrid, /*merge=*/true, cache.string());
  const RealRun warm = run_real(dataset, kSmallGrid, /*merge=*/true, cache.string());
  std::printf("part 2: real training (mnist-like 240/80), 6-trial grid, epochs {2, 6}\n");
  std::printf("  %-22s %10s %14s %14s\n", "run", "wall ms", "stage tasks", "replayed");
  std::printf("  %-22s %10.0f %14zu %14zu\n", "unmerged (baseline)", unmerged.wall_ms,
              unmerged.outcome.reuse->stages, unmerged.outcome.reuse->replayed_trials);
  std::printf("  %-22s %10.0f %14zu %14zu\n", "merged, cold cache", cold.wall_ms,
              cold.outcome.reuse->stages, cold.outcome.reuse->replayed_trials);
  std::printf("  %-22s %10.0f %14zu %14zu\n", "merged, warm cache", warm.wall_ms,
              warm.outcome.reuse->stages, warm.outcome.reuse->replayed_trials);
  std::printf("  merged vs unmerged: %.2fx    warm vs cold: %.1fx (target >= 5x)\n\n",
              unmerged.wall_ms / cold.wall_ms, cold.wall_ms / warm.wall_ms);

  // Part 3: a refinement session — the epoch axis is extended after a first
  // run; cached chains resume at their deepest checkpoint.
  const fs::path session = fs::temp_directory_path() / "chpo_bench_reuse_session";
  fs::remove_all(session);
  run_real(dataset, kSeedGrid, /*merge=*/true, session.string());  // first session
  const RealRun extended = run_real(dataset, kExtendedGrid, /*merge=*/true, session.string());
  const RealRun scratch = run_real(dataset, kExtendedGrid, /*merge=*/false, "");
  std::printf("part 3: grid refinement — epochs {2, 4} cached, then {2, 4, 8} requested\n");
  std::printf("  %-28s %10s %14s\n", "run", "wall ms", "replayed");
  std::printf("  %-28s %10.0f %14zu\n", "from scratch (unmerged)", scratch.wall_ms,
              scratch.outcome.reuse->replayed_trials);
  std::printf("  %-28s %10.0f %14zu\n", "extend cached session", extended.wall_ms,
              extended.outcome.reuse->replayed_trials);
  std::printf("  refinement speedup: %.2fx (target >= 2x)\n\n",
              scratch.wall_ms / extended.wall_ms);

  std::printf("%s", hpo::reuse_summary(*extended.outcome.reuse).c_str());

  fs::remove_all(cache);
  fs::remove_all(session);
  return 0;
}
