// google-benchmark microbenchmarks of the runtime's hot paths: task
// submission + dependency analysis, scheduling, trace emission, JSON
// parsing, the GP surrogate, and the ML kernels.
#include <benchmark/benchmark.h>

#include "hpo/gp.hpp"
#include "hpo/search_space.hpp"
#include "jsonlite/json.hpp"
#include "ml/tensor.hpp"
#include "runtime/runtime.hpp"
#include "support/log.hpp"

namespace {

using namespace chpo;

void BM_TaskSubmission(benchmark::State& state) {
  set_log_level(LogLevel::Error);
  for (auto _ : state) {
    state.PauseTiming();
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(1);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    rt::TaskDef def;
    def.name = "noop";
    def.body = [](rt::TaskContext&) { return std::any(); };
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) runtime.submit(def);
    state.PauseTiming();
    runtime.barrier();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaskSubmission)->Arg(256)->Arg(1024);

void BM_SubmitAndRunSim(benchmark::State& state) {
  set_log_level(LogLevel::Error);
  for (auto _ : state) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(2);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    rt::TaskDef def;
    def.name = "noop";
    def.body = [](rt::TaskContext&) { return std::any(); };
    for (int i = 0; i < state.range(0); ++i) runtime.submit(def);
    runtime.barrier();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitAndRunSim)->Arg(256)->Arg(1024);

void BM_DependencyChain(benchmark::State& state) {
  set_log_level(LogLevel::Error);
  for (auto _ : state) {
    rt::RuntimeOptions options;
    options.cluster = cluster::marenostrum4(1);
    options.simulate = true;
    rt::Runtime runtime(std::move(options));
    const rt::DataId d = runtime.share(0);
    rt::TaskDef def;
    def.name = "chain";
    def.body = [](rt::TaskContext&) { return std::any(); };
    for (int i = 0; i < state.range(0); ++i)
      runtime.submit(def, {{d, rt::Direction::InOut}});
    runtime.barrier();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DependencyChain)->Arg(256);

void BM_TraceRecord(benchmark::State& state) {
  trace::TraceSink sink(state.range(0) != 0);
  trace::Event event{.kind = trace::EventKind::TaskRun,
                     .task_id = 1,
                     .task_name = "experiment",
                     .node = 0,
                     .cores = {0},
                     .t_start = 0.0,
                     .t_end = 1.0};
  for (auto _ : state) {
    sink.record(event);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecord)->Arg(1)->Arg(0);  // enabled / disabled

void BM_JsonParseListing1(benchmark::State& state) {
  const std::string text = R"({
    "optimizer": ["Adam", "SGD", "RMSprop"],
    "num_epochs": [20, 50, 100],
    "batch_size": [32, 64, 128]
  })";
  for (auto _ : state) benchmark::DoNotOptimize(json::parse(text));
  state.SetBytesProcessed(state.iterations() * static_cast<long>(text.size()));
}
BENCHMARK(BM_JsonParseListing1);

void BM_GridEnumeration(benchmark::State& state) {
  hpo::SearchSpace space;
  json::Array values;
  for (int i = 0; i < state.range(0); ++i) values.emplace_back(i);
  space.add_categorical("a", values);
  space.add_categorical("b", values);
  space.add_categorical("c", values);
  for (auto _ : state) benchmark::DoNotOptimize(space.enumerate_grid());
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(0) * state.range(0));
}
BENCHMARK(BM_GridEnumeration)->Arg(3)->Arg(10);

void BM_GpFitPredict(benchmark::State& state) {
  Rng rng(1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = {rng.next_double(), rng.next_double(), rng.next_double()};
    ys[i] = rng.next_double();
  }
  for (auto _ : state) {
    hpo::GaussianProcess gp(0.3, 1.0, 1e-6);
    gp.fit(xs, ys);
    benchmark::DoNotOptimize(gp.predict({0.5, 0.5, 0.5}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GpFitPredict)->Arg(16)->Arg(64);

void BM_Matmul(benchmark::State& state) {
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ml::Tensor a = ml::Tensor::randn({n, n}, rng);
  const ml::Tensor b = ml::Tensor::randn({n, n}, rng);
  ml::Tensor c;
  for (auto _ : state) {
    ml::matmul(a, b, c, 1);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_RngU64(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

}  // namespace

BENCHMARK_MAIN();
