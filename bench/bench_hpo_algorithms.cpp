// §2.1's algorithm comparison, run for real: best accuracy found vs number
// of trials for grid search, random search, GP-EI and successive halving
// on the same dataset and budget — the "key algorithms" library the paper
// leaves as future work.
#include <algorithm>

#include "bench_common.hpp"
#include "hpo/algorithms.hpp"
#include "hpo/hyperband.hpp"
#include "hpo/tpe.hpp"
#include "hpo/report.hpp"
#include "ml/dataset.hpp"

namespace {

using namespace chpo;

rt::RuntimeOptions local_cluster() {
  rt::RuntimeOptions options;
  cluster::NodeSpec node;
  node.name = "local";
  node.cpus = 4;
  options.cluster = cluster::homogeneous(1, node);
  return options;
}

}  // namespace

int main() {
  bench::print_header("bench_hpo_algorithms", "Section 2.1 (grid vs random vs model-based)");

  const ml::Dataset dataset = ml::make_mnist_like(300, 120, 1234);
  hpo::SearchSpace space = hpo::SearchSpace::from_json_text(R"({
    "optimizer":  ["Adam", "SGD", "RMSprop"],
    "num_epochs": [1, 2, 4],
    "batch_size": [16, 32, 64]
  })");
  space.add_float("learning_rate", 1e-4, 1e-1, /*log=*/true);

  hpo::DriverOptions driver_options;
  driver_options.seed = 5;

  struct Row {
    std::string name;
    std::size_t trials;
    double best;
    double first_good;  ///< trial index reaching 90% of the final best (+1)
  };
  std::vector<Row> rows;

  const auto record = [&rows](const std::string& name, const hpo::HpoOutcome& outcome) {
    double best = 0;
    for (const auto& t : outcome.trials)
      if (!t.failed) best = std::max(best, t.result.final_val_accuracy);
    double first_good = static_cast<double>(outcome.trials.size());
    for (const auto& t : outcome.trials)
      if (!t.failed && t.result.final_val_accuracy >= 0.9 * best) {
        first_good = t.index + 1;
        break;
      }
    rows.push_back(Row{name, outcome.trials.size(), best, first_good});
  };

  {
    // Grid cannot span the continuous lr dimension — drop it (its handicap).
    const hpo::SearchSpace grid_space = hpo::SearchSpace::from_json_text(R"({
      "optimizer":  ["Adam", "SGD", "RMSprop"],
      "num_epochs": [1, 2, 4],
      "batch_size": [16, 32, 64]
    })");
    rt::Runtime runtime(local_cluster());
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    hpo::GridSearch grid(grid_space);
    record("grid (27)", driver.run(grid));
  }
  {
    rt::Runtime runtime(local_cluster());
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    hpo::RandomSearch random(space, 12, 77);
    record("random (12)", driver.run(random));
  }
  {
    rt::Runtime runtime(local_cluster());
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    hpo::GpBayesOpt bo(space, {.max_evals = 12, .n_init = 4, .seed = 77});
    record("gp-ei (12)", driver.run(bo));
  }
  {
    rt::Runtime runtime(local_cluster());
    hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
    hpo::TpeSearch tpe(space, {.max_evals = 12, .n_init = 4, .seed = 77});
    record("tpe (12)", driver.run(tpe));
  }
  {
    rt::Runtime runtime(local_cluster());
    hpo::HalvingOptions halving;
    halving.initial_configs = 12;
    halving.initial_epochs = 1;
    halving.eta = 3.0;
    halving.max_epochs = 4;
    halving.driver = driver_options;
    const hpo::HalvingOutcome outcome =
        hpo::successive_halving(runtime.main_study(), dataset, space, halving);
    std::size_t trials = 0;
    for (const auto& rung : outcome.rungs) trials += rung.trials.size();
    rows.push_back(Row{"halving (12->4)", trials, outcome.best_accuracy, 0});
  }
  {
    rt::Runtime runtime(local_cluster());
    hpo::HyperbandOptions hb;
    hb.max_epochs = 4;
    hb.eta = 2.0;
    hb.driver = driver_options;
    const hpo::HyperbandOutcome outcome = hpo::hyperband(runtime.main_study(), dataset, space, hb);
    rows.push_back(Row{"hyperband (R=4)", outcome.total_trials, outcome.best_accuracy, 0});
  }

  std::printf("%-18s %-10s %-12s %-24s\n", "algorithm", "trials", "best acc",
              "trials to 90% of best");
  for (const auto& r : rows)
    std::printf("%-18s %-10zu %-12.3f %-24.0f\n", r.name.c_str(), r.trials, r.best,
                r.first_good);
  std::printf("\npaper §2.1: \"random search ... arrives at parameters that are good or\n"
              "better at a fraction of the time required by grid search\".\n");
  return 0;
}
