# Header self-containedness check.
#
# For every header under src/, generate a translation unit containing only
# `#include "<header>"` and compile them all into one object library. A
# header that silently depends on its includer's context (a missing
# <vector>, a forward declaration it forgot) breaks this target — and
# therefore the `header_selfcheck` ctest — instead of breaking whichever
# unlucky TU includes it next.
#
# Generated TUs are content-compared before being rewritten, so a cmake
# re-run does not dirty the object library when nothing changed.

file(GLOB_RECURSE CHPO_SELFCHECK_HEADERS
     RELATIVE "${CMAKE_SOURCE_DIR}/src"
     CONFIGURE_DEPENDS
     "${CMAKE_SOURCE_DIR}/src/*.hpp")

set(CHPO_SELFCHECK_TUS "")
foreach(header IN LISTS CHPO_SELFCHECK_HEADERS)
  string(REPLACE "/" "_" tu_name "${header}")
  string(REPLACE ".hpp" ".selfcheck.cpp" tu_name "${tu_name}")
  set(tu "${CMAKE_BINARY_DIR}/header_selfcheck/${tu_name}")
  set(tu_content "#include \"${header}\"\n")
  if(EXISTS "${tu}")
    file(READ "${tu}" tu_existing)
  else()
    set(tu_existing "")
  endif()
  if(NOT tu_existing STREQUAL tu_content)
    file(WRITE "${tu}" "${tu_content}")
  endif()
  list(APPEND CHPO_SELFCHECK_TUS "${tu}")
endforeach()

add_library(chpo_header_selfcheck OBJECT EXCLUDE_FROM_ALL ${CHPO_SELFCHECK_TUS})
target_include_directories(chpo_header_selfcheck PRIVATE "${CMAKE_SOURCE_DIR}/src")
target_link_libraries(chpo_header_selfcheck PRIVATE chpo Threads::Threads)

add_test(NAME header_selfcheck
         COMMAND "${CMAKE_COMMAND}" --build "${CMAKE_BINARY_DIR}"
                 --target chpo_header_selfcheck)
# Build-invoking tests must not run concurrently with each other under
# `ctest -j` (two build-tool processes in one tree).
set_tests_properties(header_selfcheck PROPERTIES RUN_SERIAL TRUE)
