#!/usr/bin/env python3
"""Perf-regression gate over BENCH_engine.json.

Compares a fresh bench_engine_throughput run against the latest committed
baseline row per (backend, studies) configuration and fails when tasks/s
drops more than the threshold below it. On a pass, --append folds the new
rows (with their commit/date/host_threads provenance) into the committed
file so the baseline history keeps growing.

Usage:
  bench_engine_throughput --json /tmp/bench_new.json
  python3 tools/bench_gate.py --baseline BENCH_engine.json \
      --new /tmp/bench_new.json --max-drop 0.25 --append

Exit status: 0 = within budget, 1 = regression, 2 = usage/schema error.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        print(f"bench_gate: {path} has no rows", file=sys.stderr)
        sys.exit(2)
    return doc, rows


def latest_per_config(rows):
    """Last committed row per (backend, studies) — the file is append-only
    history, so the last entry is the newest baseline."""
    latest = {}
    for row in rows:
        latest[(row.get("backend"), row.get("studies"))] = row
    return latest


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed BENCH_engine.json")
    parser.add_argument("--new", dest="new_path", required=True, help="fresh --json output")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.25,
        help="max allowed fractional tasks/s drop vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="on pass, append the new rows to the baseline file",
    )
    args = parser.parse_args()

    base_doc, base_rows = load_rows(args.baseline)
    _, new_rows = load_rows(args.new_path)
    baseline = latest_per_config(base_rows)

    failed = False
    for row in new_rows:
        key = (row.get("backend"), row.get("studies"))
        committed = baseline.get(key)
        if committed is None:
            print(f"  {key[0]}/{key[1]}: no committed baseline, accepting "
                  f"{row['tasks_per_second']:.1f} tasks/s")
            continue
        old = float(committed["tasks_per_second"])
        new = float(row["tasks_per_second"])
        change = (new - old) / old if old > 0 else 0.0
        verdict = "OK"
        if old > 0 and new < old * (1.0 - args.max_drop):
            verdict = f"REGRESSION (>{args.max_drop:.0%} drop)"
            failed = True
        print(f"  {key[0]}/{key[1]}: {old:.1f} -> {new:.1f} tasks/s "
              f"({change:+.1%}) {verdict}")

    if failed:
        print(f"bench_gate: FAIL — tasks/s dropped more than {args.max_drop:.0%} "
              "below the committed baseline", file=sys.stderr)
        return 1

    if args.append:
        base_doc["rows"] = base_rows + new_rows
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(base_doc, fh, indent=2)
            fh.write("\n")
        print(f"bench_gate: PASS — appended {len(new_rows)} rows to {args.baseline}")
    else:
        print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
