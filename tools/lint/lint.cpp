#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace chpo::lint {

namespace {

namespace fs = std::filesystem;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// Path with '\\' normalised to '/'.
std::string normalise(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Find `token` in `line` at an identifier boundary on the left (so a match
/// inside a longer identifier does not count). Returns npos if absent.
std::string::size_type find_word(const std::string& line, const std::string& token,
                                 std::string::size_type from = 0) {
  for (auto pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos == 0 || !ident_char(line[pos - 1])) return pos;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: raw-lock-call
// ---------------------------------------------------------------------------

void rule_raw_lock_call(const SourceFile& file, const std::vector<std::string>& lines,
                        std::vector<Finding>& out) {
  if (ends_with(file.path, "support/thread_annotations.hpp")) return;  // the RAII guards themselves
  static const std::string kMethods[] = {"lock()", "unlock()", "lock_shared()", "unlock_shared()"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (const std::string& method : kMethods) {
      for (auto pos = line.find(method); pos != std::string::npos;
           pos = line.find(method, pos + 1)) {
        // Only calls through an object: .method() or ->method().
        const bool via_dot = pos >= 1 && line[pos - 1] == '.';
        const bool via_arrow = pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
        if (!via_dot && !via_arrow) continue;
        out.push_back({file.path, static_cast<int>(i + 1), "raw-lock-call",
                       "raw " + method +
                           " call; use the RAII guards from support/thread_annotations.hpp "
                           "(MutexLock / ReaderLock / WriterLock)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-std-mutex
// ---------------------------------------------------------------------------

void rule_raw_std_mutex(const SourceFile& file, const std::vector<std::string>& lines,
                        std::vector<Finding>& out) {
  if (!contains(file.path, "src/")) return;  // wrappers are mandatory in the library only
  if (ends_with(file.path, "support/thread_annotations.hpp")) return;  // wraps the std types
  static const std::string kTypes[] = {"std::mutex",           "std::shared_mutex",
                                       "std::timed_mutex",     "std::recursive_mutex",
                                       "std::condition_variable",
                                       "std::condition_variable_any"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (const std::string& type : kTypes) {
      for (auto pos = find_word(line, type); pos != std::string::npos;
           pos = find_word(line, type, pos + 1)) {
        // Exact token only: a longer identifier (e.g. the _any variant,
        // checked as its own entry) is not a match for its prefix.
        const auto after = pos + type.size();
        if (after < line.size() && ident_char(line[after])) continue;
        out.push_back({file.path, static_cast<int>(i + 1), "raw-std-mutex",
                       type + " in src/; use the annotated chpo::Mutex / chpo::CondVar "
                              "wrappers so -Wthread-safety can check the lock discipline"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nondeterministic-rng
// ---------------------------------------------------------------------------

void rule_nondeterministic_rng(const SourceFile& file, const std::vector<std::string>& lines,
                               std::vector<Finding>& out) {
  // Replay, lineage recovery and the content-addressed result cache all
  // assume seed-derived determinism; entropy sources are banned there.
  if (!contains(file.path, "/runtime/") && !contains(file.path, "/reuse/")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (find_word(line, "std::random_device") != std::string::npos ||
        find_word(line, "random_device") != std::string::npos) {
      out.push_back({file.path, static_cast<int>(i + 1), "nondeterministic-rng",
                     "std::random_device in a deterministic path; derive RNG state from "
                     "the trial/task seed instead"});
      continue;
    }
    if (find_word(line, "rand(") != std::string::npos ||
        find_word(line, "srand(") != std::string::npos) {
      out.push_back({file.path, static_cast<int>(i + 1), "nondeterministic-rng",
                     "C rand()/srand() in a deterministic path; use a seeded "
                     "std::mt19937_64 derived from the trial/task seed"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-runtime-ref
// ---------------------------------------------------------------------------

void rule_raw_runtime_ref(const SourceFile& file, const std::vector<std::string>& lines,
                          std::vector<Finding>& out) {
  // The HPO and service layers speak to the engine through StudySession
  // handles only: a raw rt::Runtime& smuggles exclusive ownership back in
  // and breaks multi-study multiplexing (and its cancellation isolation).
  if (!contains(file.path, "src/hpo/") && !contains(file.path, "src/service/")) return;
  static const std::string kToken = "Runtime";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (auto pos = find_word(line, kToken); pos != std::string::npos;
         pos = find_word(line, kToken, pos + 1)) {
      auto after = pos + kToken.size();
      // Exact token only: RuntimeOptions etc. are fine (value types).
      if (after < line.size() && ident_char(line[after])) continue;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '&') {
        out.push_back({file.path, static_cast<int>(i + 1), "raw-runtime-ref",
                       "rt::Runtime& in the hpo/service layer; take a rt::StudySession "
                       "instead (study-tagged, non-exclusive view of the runtime)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: callback-in-engine-mutation
// ---------------------------------------------------------------------------

void rule_callback_in_engine_mutation(const SourceFile& file,
                                      const std::vector<std::string>& lines,
                                      std::vector<Finding>& out) {
  if (!ends_with(file.path, "runtime/engine.cpp")) return;
  // Track the current Engine method from definition lines of the form
  // "<ret> Engine::name(". The terminal listener may only fire inside
  // flush_notifications(), the designated safe point where no TaskRecord
  // references are live.
  std::string current;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const auto def = line.find("Engine::");
    if (def != std::string::npos && (def == 0 || !ident_char(line[def - 1]))) {
      const auto name_start = def + std::string("Engine::").size();
      auto name_end = name_start;
      while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
      if (name_end < line.size() && line[name_end] == '(' && name_end > name_start)
        current = line.substr(name_start, name_end - name_start);
    }
    const auto call = line.find("on_terminal_(");
    if (call == std::string::npos) continue;
    if (call > 0 && ident_char(line[call - 1])) continue;
    if (current == "flush_notifications") continue;
    out.push_back({file.path, static_cast<int>(i + 1), "callback-in-engine-mutation",
                   "terminal-listener invocation inside Engine::" +
                       (current.empty() ? std::string("<file scope>") : current) +
                       "; user callbacks may only fire from Engine::flush_notifications "
                       "(the no-live-references safe point)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: registry-lock-blocking-call
// ---------------------------------------------------------------------------

void rule_registry_lock_blocking_call(const SourceFile& file,
                                      const std::vector<std::string>& lines,
                                      std::vector<Finding>& out) {
  // The daemon's queues (connection registry, command/outbound queues) sit
  // between the I/O thread and the coordinator. Their locks exist to move
  // data, not to serialise work: a blocking Server/StudyManager call made
  // while one is held couples socket latency to engine latency (and is one
  // lock-order edge away from a deadlock). CondVar waits are exempt — they
  // release the mutex while sleeping, which is the one legitimate way to
  // block under a queue lock.
  if (!contains(file.path, "src/daemon/")) return;
  static const std::string kBlocking[] = {"handle(",  "handle_line_error(", "step(",
                                          "step_for(", "run_all(",           "wait_any(",
                                          "wait_any_for(", "wait_on(",       "barrier("};
  int depth = 0;
  std::vector<int> guards;  // brace depth at each live MutexLock declaration
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (find_word(line, "MutexLock") != std::string::npos &&
        line.find('(') != std::string::npos && !contains(line, "class") &&
        !contains(line, "~MutexLock")) {
      guards.push_back(depth);
    } else if (!guards.empty()) {
      for (const std::string& method : kBlocking) {
        bool flagged = false;
        for (auto pos = line.find(method); pos != std::string::npos && !flagged;
             pos = line.find(method, pos + 1)) {
          // Member calls only (.m( / ->m()): definitions and free
          // functions with coincident names stay clean.
          const bool via_dot = pos >= 1 && line[pos - 1] == '.';
          const bool via_arrow = pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
          if (!via_dot && !via_arrow) continue;
          out.push_back(
              {file.path, static_cast<int>(i + 1), "registry-lock-blocking-call",
               "blocking ." + method +
                   "...) while a MutexLock is held in daemon code; the "
                   "connection-registry/queue locks must bracket data moves only — "
                   "copy out under the lock, release it, then call the server/manager"});
          flagged = true;  // one finding per method per line is enough
        }
      }
    }
    for (const char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!guards.empty() && guards.back() > depth) guards.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-std-function
// ---------------------------------------------------------------------------

/// Methods on the per-dispatch hot path: every admission, scheduling round,
/// attempt registration and completion crosses these, so a std::function
/// there means a type-erasing heap allocation (and an indirect call the
/// optimiser cannot devirtualise) per task. Coordinator-rate entry points
/// like ThreadBackend::drive legitimately take std::function — once per
/// wait, not once per task — and stay off this list.
bool hot_path_method(const std::string& qualifier, const std::string& name) {
  if (qualifier == "Engine") {
    static const char* kHot[] = {"on_submitted",    "on_submitted_batch", "make_ready",
                                 "push_ready",      "remove_from_ready",  "schedule",
                                 "apply_study_policy", "register_attempt", "prepare_body",
                                 "complete_attempt", "conclude_attempt"};
    for (const char* method : kHot)
      if (name == method) return true;
    return false;
  }
  static const char* kHot[] = {"launch", "run_job"};
  for (const char* method : kHot)
    if (name == method) return true;
  return false;
}

void rule_hot_path_std_function(const SourceFile& file, const std::vector<std::string>& lines,
                                std::vector<Finding>& out) {
  std::string qualifier;
  if (ends_with(file.path, "runtime/engine.cpp"))
    qualifier = "Engine";
  else if (ends_with(file.path, "runtime/thread_backend.cpp"))
    qualifier = "ThreadBackend";
  else
    return;
  const std::string marker = qualifier + "::";
  std::string current;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Update the current method from *every* "<ret> Qual::name(" on the
    // line before flagging, so a definition whose own signature carries a
    // std::function is attributed to itself, not the previous method
    // (e.g. "bool ThreadBackend::drive(const std::function<bool()>&...").
    for (auto def = line.find(marker); def != std::string::npos;
         def = line.find(marker, def + 1)) {
      if (def > 0 && ident_char(line[def - 1])) continue;
      const auto name_start = def + marker.size();
      auto name_end = name_start;
      while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
      if (name_end < line.size() && line[name_end] == '(' && name_end > name_start)
        current = line.substr(name_start, name_end - name_start);
    }
    if (find_word(line, "std::function") == std::string::npos) continue;
    if (!hot_path_method(qualifier, current)) continue;
    out.push_back({file.path, static_cast<int>(i + 1), "hot-path-std-function",
                   "std::function on the per-dispatch hot path (" + qualifier + "::" + current +
                       "); it type-erases through a heap allocation per task — use a "
                       "function pointer plus void* context (see StealPool::Sink) or a "
                       "pre-bound member"});
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-kind-coverage (cross-file)
// ---------------------------------------------------------------------------

struct EnumMember {
  std::string name;
  int line = 0;
};

/// Parse the members of `enum class EventKind` from masked trace.hpp text.
std::vector<EnumMember> parse_event_kinds(const std::vector<std::string>& lines) {
  std::vector<EnumMember> members;
  bool in_enum = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (!in_enum) {
      if (contains(line, "enum class EventKind")) in_enum = true;
      continue;
    }
    if (contains(line, "};")) break;
    // Member lines look like "  Name," or "  Name = 3,".
    std::size_t p = 0;
    while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p]))) ++p;
    if (p >= line.size() || !ident_char(line[p]) ||
        std::isdigit(static_cast<unsigned char>(line[p])))
      continue;
    auto end = p;
    while (end < line.size() && ident_char(line[end])) ++end;
    members.push_back({line.substr(p, end - p), static_cast<int>(i + 1)});
  }
  return members;
}

void rule_trace_kind_coverage(const std::vector<SourceFile>& files,
                              const std::vector<std::vector<std::string>>& masked_lines,
                              std::vector<Finding>& out) {
  const SourceFile* hpp = nullptr;
  const std::vector<std::string>* hpp_lines = nullptr;
  const SourceFile* cpp = nullptr;
  const std::vector<std::string>* cpp_lines = nullptr;
  const SourceFile* prv = nullptr;
  const std::vector<std::string>* prv_lines = nullptr;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (ends_with(files[i].path, "trace/trace.hpp")) {
      hpp = &files[i];
      hpp_lines = &masked_lines[i];
    } else if (ends_with(files[i].path, "trace/trace.cpp")) {
      cpp = &files[i];
      cpp_lines = &masked_lines[i];
    } else if (ends_with(files[i].path, "trace/prv_writer.cpp")) {
      prv = &files[i];
      prv_lines = &masked_lines[i];
    }
  }
  if (hpp == nullptr || hpp_lines == nullptr) return;  // tree without the trace subsystem
  const std::vector<EnumMember> members = parse_event_kinds(*hpp_lines);
  if (members.empty()) {
    out.push_back({hpp->path, 1, "trace-kind-coverage",
                   "could not parse any members of enum class EventKind"});
    return;
  }

  // kEventKindCount must name the *last* member, so exhaustive loops over
  // [0, kEventKindCount) cannot silently truncate when a kind is appended.
  {
    bool defined = false;
    for (std::size_t i = 0; i < hpp_lines->size(); ++i) {
      const std::string& line = (*hpp_lines)[i];
      if (find_word(line, "kEventKindCount") == std::string::npos) continue;
      if (!contains(line, "EventKind::")) continue;
      defined = true;
      if (!contains(line, "EventKind::" + members.back().name))
        out.push_back({hpp->path, static_cast<int>(i + 1), "trace-kind-coverage",
                       "kEventKindCount must be defined from the last EventKind member (" +
                           members.back().name + ")"});
      break;
    }
    if (!defined)
      out.push_back({hpp->path, members.back().line, "trace-kind-coverage",
                     "missing kEventKindCount defined from the last EventKind member (" +
                         members.back().name + ")"});
  }

  if (cpp == nullptr || cpp_lines == nullptr) {
    out.push_back({hpp->path, 1, "trace-kind-coverage",
                   "trace/trace.cpp (kind_name switch) not found next to trace.hpp"});
    return;
  }
  for (const EnumMember& m : members) {
    const std::string want = "case EventKind::" + m.name;
    bool found = false;
    for (const std::string& line : *cpp_lines) {
      const auto pos = find_word(line, want);
      if (pos == std::string::npos) continue;
      const auto after = pos + want.size();
      if (after < line.size() && ident_char(line[after])) continue;  // longer member name
      found = true;
      break;
    }
    if (!found)
      out.push_back({cpp->path, m.line, "trace-kind-coverage",
                     "EventKind::" + m.name +
                         " has no case in the kind_name switch (trace.cpp), so the .pcf "
                         "label table would miss it"});
  }

  // The .pcf label table must be generated by iterating kEventKindCount, not
  // by a hand-maintained list that can drift from the enum.
  if (prv != nullptr && prv_lines != nullptr) {
    bool uses_count = false;
    for (const std::string& line : *prv_lines)
      if (find_word(line, "kEventKindCount") != std::string::npos) uses_count = true;
    if (!uses_count)
      out.push_back({prv->path, 1, "trace-kind-coverage",
                     "prv_writer.cpp must emit .pcf labels by iterating kEventKindCount "
                     "so every EventKind gets a label"});
  }
}

}  // namespace

std::string mask_comments_and_literals(const std::string& text) {
  std::string out = text;
  enum class State { Code, LineComment, BlockComment, String, Char, RawString };
  State state = State::Code;
  std::size_t i = 0;
  const auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < out.size()) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && next == '"' && (i == 0 || !ident_char(out[i - 1]))) {
          // Simple raw strings only: R"( ... )". Custom delimiters are not
          // used in this repo and would fail the lint loudly if added.
          state = State::RawString;
          i += 2;
          if (i < out.size() && out[i] == '(') ++i;
        } else if (c == '"') {
          state = State::String;
          ++i;
        } else if (c == '\'') {
          state = State::Char;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::LineComment:
        if (c == '\n')
          state = State::Code;
        else
          blank(i);
        ++i;
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < out.size()) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          ++i;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < out.size()) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          ++i;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::RawString:
        if (c == ')' && next == '"') {
          i += 2;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_files(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::vector<std::vector<std::string>> masked;
  masked.reserve(files.size());
  for (const SourceFile& file : files)
    masked.push_back(split_lines(mask_comments_and_literals(file.content)));

  for (std::size_t i = 0; i < files.size(); ++i) {
    SourceFile normalised_file{normalise(files[i].path), std::string()};
    rule_raw_lock_call(normalised_file, masked[i], findings);
    rule_raw_std_mutex(normalised_file, masked[i], findings);
    rule_nondeterministic_rng(normalised_file, masked[i], findings);
    rule_raw_runtime_ref(normalised_file, masked[i], findings);
    rule_callback_in_engine_mutation(normalised_file, masked[i], findings);
    rule_registry_lock_blocking_call(normalised_file, masked[i], findings);
    rule_hot_path_std_function(normalised_file, masked[i], findings);
  }

  std::vector<SourceFile> normalised_files;
  normalised_files.reserve(files.size());
  for (const SourceFile& file : files) normalised_files.push_back({normalise(file.path), {}});
  rule_trace_kind_coverage(normalised_files, masked, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<SourceFile> files;
  static const char* kSubtrees[] = {"src", "tools", "bench"};
  for (const char* subtree : kSubtrees) {
    const fs::path dir = fs::path(root) / subtree;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back({normalise(fs::relative(it->path(), root, ec).string()), buf.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  return lint_files(files);
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings)
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  return out.str();
}

}  // namespace chpo::lint
