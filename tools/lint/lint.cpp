#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/index.hpp"

namespace chpo::lint {

namespace {

namespace fs = std::filesystem;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

/// Path with '\\' normalised to '/'.
std::string normalise(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Find `token` in `line` at an identifier boundary on the left (so a match
/// inside a longer identifier does not count). Returns npos if absent.
std::string::size_type find_word(const std::string& line, const std::string& token,
                                 std::string::size_type from = 0) {
  for (auto pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    if (pos == 0 || !ident_char(line[pos - 1])) return pos;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: raw-lock-call
// ---------------------------------------------------------------------------

void rule_raw_lock_call(const SourceFile& file, const std::vector<std::string>& lines,
                        std::vector<Finding>& out) {
  if (ends_with(file.path, "support/thread_annotations.hpp")) return;  // the RAII guards themselves
  static const std::string kMethods[] = {"lock()", "unlock()", "lock_shared()", "unlock_shared()"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (const std::string& method : kMethods) {
      for (auto pos = line.find(method); pos != std::string::npos;
           pos = line.find(method, pos + 1)) {
        // Only calls through an object: .method() or ->method().
        const bool via_dot = pos >= 1 && line[pos - 1] == '.';
        const bool via_arrow = pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>';
        if (!via_dot && !via_arrow) continue;
        out.push_back({file.path, static_cast<int>(i + 1), "raw-lock-call",
                       "raw " + method +
                           " call; use the RAII guards from support/thread_annotations.hpp "
                           "(MutexLock / ReaderLock / WriterLock)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-std-mutex
// ---------------------------------------------------------------------------

void rule_raw_std_mutex(const SourceFile& file, const std::vector<std::string>& lines,
                        std::vector<Finding>& out) {
  if (!contains(file.path, "src/")) return;  // wrappers are mandatory in the library only
  if (ends_with(file.path, "support/thread_annotations.hpp")) return;  // wraps the std types
  // The lockdep witness cannot guard itself with the instrumented wrappers
  // (its hooks would recurse into themselves), so it uses std::mutex.
  if (ends_with(file.path, "support/lockdep.cpp")) return;
  static const std::string kTypes[] = {"std::mutex",           "std::shared_mutex",
                                       "std::timed_mutex",     "std::recursive_mutex",
                                       "std::condition_variable",
                                       "std::condition_variable_any"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (const std::string& type : kTypes) {
      for (auto pos = find_word(line, type); pos != std::string::npos;
           pos = find_word(line, type, pos + 1)) {
        // Exact token only: a longer identifier (e.g. the _any variant,
        // checked as its own entry) is not a match for its prefix.
        const auto after = pos + type.size();
        if (after < line.size() && ident_char(line[after])) continue;
        out.push_back({file.path, static_cast<int>(i + 1), "raw-std-mutex",
                       type + " in src/; use the annotated chpo::Mutex / chpo::CondVar "
                              "wrappers so -Wthread-safety can check the lock discipline"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nondeterministic-rng
// ---------------------------------------------------------------------------

void rule_nondeterministic_rng(const SourceFile& file, const std::vector<std::string>& lines,
                               std::vector<Finding>& out) {
  // Replay, lineage recovery and the content-addressed result cache all
  // assume seed-derived determinism; entropy sources are banned there.
  if (!contains(file.path, "/runtime/") && !contains(file.path, "/reuse/")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (find_word(line, "std::random_device") != std::string::npos ||
        find_word(line, "random_device") != std::string::npos) {
      out.push_back({file.path, static_cast<int>(i + 1), "nondeterministic-rng",
                     "std::random_device in a deterministic path; derive RNG state from "
                     "the trial/task seed instead"});
      continue;
    }
    if (find_word(line, "rand(") != std::string::npos ||
        find_word(line, "srand(") != std::string::npos) {
      out.push_back({file.path, static_cast<int>(i + 1), "nondeterministic-rng",
                     "C rand()/srand() in a deterministic path; use a seeded "
                     "std::mt19937_64 derived from the trial/task seed"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-runtime-ref
// ---------------------------------------------------------------------------

void rule_raw_runtime_ref(const SourceFile& file, const std::vector<std::string>& lines,
                          std::vector<Finding>& out) {
  // The HPO and service layers speak to the engine through StudySession
  // handles only: a raw rt::Runtime& smuggles exclusive ownership back in
  // and breaks multi-study multiplexing (and its cancellation isolation).
  if (!contains(file.path, "src/hpo/") && !contains(file.path, "src/service/")) return;
  static const std::string kToken = "Runtime";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (auto pos = find_word(line, kToken); pos != std::string::npos;
         pos = find_word(line, kToken, pos + 1)) {
      auto after = pos + kToken.size();
      // Exact token only: RuntimeOptions etc. are fine (value types).
      if (after < line.size() && ident_char(line[after])) continue;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == '&') {
        out.push_back({file.path, static_cast<int>(i + 1), "raw-runtime-ref",
                       "rt::Runtime& in the hpo/service layer; take a rt::StudySession "
                       "instead (study-tagged, non-exclusive view of the runtime)"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: callback-in-engine-mutation
// ---------------------------------------------------------------------------

void rule_callback_in_engine_mutation(const SourceFile& file,
                                      const std::vector<std::string>& lines,
                                      std::vector<Finding>& out) {
  if (!ends_with(file.path, "runtime/engine.cpp")) return;
  // Track the current Engine method from definition lines of the form
  // "<ret> Engine::name(". The terminal listener may only fire inside
  // flush_notifications(), the designated safe point where no TaskRecord
  // references are live.
  std::string current;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const auto def = line.find("Engine::");
    if (def != std::string::npos && (def == 0 || !ident_char(line[def - 1]))) {
      const auto name_start = def + std::string("Engine::").size();
      auto name_end = name_start;
      while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
      if (name_end < line.size() && line[name_end] == '(' && name_end > name_start)
        current = line.substr(name_start, name_end - name_start);
    }
    const auto call = line.find("on_terminal_(");
    if (call == std::string::npos) continue;
    if (call > 0 && ident_char(line[call - 1])) continue;
    if (current == "flush_notifications") continue;
    out.push_back({file.path, static_cast<int>(i + 1), "callback-in-engine-mutation",
                   "terminal-listener invocation inside Engine::" +
                       (current.empty() ? std::string("<file scope>") : current) +
                       "; user callbacks may only fire from Engine::flush_notifications "
                       "(the no-live-references safe point)"});
  }
}

// ---------------------------------------------------------------------------
// Rule: registry-lock-blocking-call
// ---------------------------------------------------------------------------

/// Blocking calls that may not run under a daemon queue lock. `sync` is
/// the journal's fsync barrier; the rest drive the Server/StudyManager/
/// engine. CondVar waits stay exempt — they release the mutex.
bool blocking_method(const std::string& name) {
  static const char* kBlocking[] = {"handle",       "handle_line_error", "step",
                                    "step_for",     "run_all",           "wait_any",
                                    "wait_any_for", "wait_on",           "barrier",
                                    "sync"};
  for (const char* m : kBlocking)
    if (name == m) return true;
  return false;
}

/// Is this call site a blocking call by itself? Member calls of the
/// blocking set, or a free fsync() (the raw syscall).
bool directly_blocking(const CallSite& call) {
  if (call.member && blocking_method(call.callee)) return true;
  if (!call.member && call.callee == "fsync") return true;
  return false;
}

/// RAII guard declaration at token `i`: `MutexLock name(`. Returns the
/// token index of the `(` or 0 when not a guard.
std::size_t guard_open_paren(const std::vector<Token>& tokens, std::size_t i,
                             bool any_guard_kind) {
  const std::string& t = tokens[i].text;
  const bool is_guard =
      t == "MutexLock" || (any_guard_kind && (t == "WriterLock" || t == "ReaderLock"));
  if (!is_guard) return 0;
  if (i > 0 && (tokens[i - 1].text == "~" || tokens[i - 1].text == "class")) return 0;
  if (i + 2 >= tokens.size()) return 0;
  const std::string& name = tokens[i + 1].text;
  if (name.empty() || !(std::isalpha(static_cast<unsigned char>(name[0])) != 0 || name[0] == '_'))
    return 0;
  if (tokens[i + 2].text != "(") return 0;
  return i + 2;
}

void rule_registry_lock_blocking_call(const SourceFile& file, const FileIndex& index,
                                      std::vector<Finding>& out) {
  // The daemon's queues (connection registry, command/outbound queues) sit
  // between the I/O thread and the coordinator. Their locks exist to move
  // data, not to serialise work: a blocking Server/StudyManager call made
  // while one is held couples socket latency to engine latency (and is one
  // lock-order edge away from a deadlock). The rule follows calls one hop:
  // a file-local helper invoked from the guarded scope (free call or
  // this->) is checked for the same blocking calls, so moving the call
  // into a helper does not evade the rule. CondVar waits are exempt — they
  // release the mutex while sleeping, which is the one legitimate way to
  // block under a queue lock.
  if (!contains(file.path, "src/daemon/")) return;
  // The journal's own lock class (daemon.journal) IS the append/fsync
  // durability barrier — the one documented place that blocks under a lock
  // (DESIGN.md §11).
  if (ends_with(file.path, "daemon/journal.cpp")) return;
  const std::vector<Token>& tokens = index.tokens;
  for (const FunctionDef& def : index.functions) {
    int depth = 0;
    std::vector<int> guards;  // brace depth at each live guard declaration
    std::size_t call_cursor = 0;
    for (std::size_t i = def.body_begin; i <= def.body_end && i < tokens.size(); ++i) {
      const std::string& t = tokens[i].text;
      if (t == "{") {
        ++depth;
        continue;
      }
      if (t == "}") {
        --depth;
        while (!guards.empty() && guards.back() > depth) guards.pop_back();
        continue;
      }
      if (guard_open_paren(tokens, i, /*any_guard_kind=*/false) != 0) {
        guards.push_back(depth);
        i += 2;  // skip `name (` so the declaration is not seen as a call
        continue;
      }
      if (guards.empty()) continue;
      // Align with the precomputed call sites for this body.
      while (call_cursor < def.calls.size() && def.calls[call_cursor].token_index < i)
        ++call_cursor;
      if (call_cursor >= def.calls.size() || def.calls[call_cursor].token_index != i) continue;
      const CallSite& call = def.calls[call_cursor];
      if (directly_blocking(call)) {
        out.push_back(
            {file.path, call.line, "registry-lock-blocking-call",
             "blocking ." + call.callee +
                 "(...) while a MutexLock is held in daemon code; the "
                 "connection-registry/queue locks must bracket data moves only — "
                 "copy out under the lock, release it, then call the server/manager"});
        continue;
      }
      // One hop: a file-local helper called from the guarded scope.
      if (call.member && call.receiver != "this") continue;
      const FunctionDef* helper = find_function(index, call.callee);
      if (helper == nullptr || helper == &def) continue;
      for (const CallSite& inner : helper->calls) {
        if (!directly_blocking(inner)) continue;
        out.push_back(
            {file.path, call.line, "registry-lock-blocking-call",
             "call to " + helper->name + "() while a MutexLock is held in daemon code, and " +
                 helper->name + "() makes a blocking ." + inner.callee + "(...) call (line " +
                 std::to_string(inner.line) +
                 "); the queue locks must bracket data moves only — release the lock "
                 "before calling into the server/manager, even through a helper"});
        break;  // one finding per helper call site is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lock-rank-order (cross-file)
// ---------------------------------------------------------------------------

/// Rank table entry parsed from support/lockdep.hpp.
struct RankTable {
  std::vector<std::pair<std::string, int>> classes;  // kName -> rank
  int rank_of(const std::string& cls) const {
    for (const auto& [name, rank] : classes)
      if (name == cls) return rank;
    return -1;
  }
  bool empty() const { return classes.empty(); }
};

/// Parse `inline constexpr LockClass kName{"label", rank};` entries.
/// The label is masked; the class identifier + trailing number carry the
/// information. Entries without a number (or spelled kUnranked) get -1.
RankTable parse_rank_table(const FileIndex& index) {
  RankTable table;
  const std::vector<Token>& tokens = index.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "LockClass") continue;
    const std::string& name = tokens[i + 1].text;
    if (name.empty() || name[0] != 'k') continue;  // `struct LockClass {` etc.
    if (tokens[i + 2].text != "{") continue;
    int rank = -1;
    for (std::size_t j = i + 3; j < tokens.size() && tokens[j].text != "}"; ++j) {
      const std::string& t = tokens[j].text;
      if (!t.empty() && std::isdigit(static_cast<unsigned char>(t[0])) != 0)
        rank = std::atoi(t.c_str());
    }
    table.classes.emplace_back(name, rank);
  }
  return table;
}

/// Member-name -> lock-class map from `Mutex member{lockdep::kClass}`
/// declarations (Mutex or SharedMutex, with or without chpo::).
using MemberClasses = std::vector<std::pair<std::string, std::string>>;

MemberClasses parse_member_classes(const FileIndex& index) {
  MemberClasses members;
  const std::vector<Token>& tokens = index.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "Mutex" && tokens[i].text != "SharedMutex") continue;
    const std::string& member = tokens[i + 1].text;
    if (member.empty() ||
        !(std::isalpha(static_cast<unsigned char>(member[0])) != 0 || member[0] == '_'))
      continue;
    if (tokens[i + 2].text != "{") continue;
    // Inside the braces: [chpo ::] lockdep :: kClass
    std::string cls;
    bool saw_lockdep = false;
    for (std::size_t j = i + 3; j < tokens.size() && tokens[j].text != "}"; ++j) {
      if (tokens[j].text == "lockdep") saw_lockdep = true;
      if (saw_lockdep && !tokens[j].text.empty() && tokens[j].text[0] == 'k')
        cls = tokens[j].text;
    }
    if (saw_lockdep && !cls.empty()) members.emplace_back(member, cls);
  }
  return members;
}

std::string class_of_member(const MemberClasses& members, const std::string& member) {
  for (const auto& [name, cls] : members)
    if (name == member) return cls;
  return {};
}

/// The lock member a guard declaration acquires: the last identifier
/// inside its parens (`mutex_`, `queues_[i].mutex`, `this->mutex_`).
std::string guarded_member(const std::vector<Token>& tokens, std::size_t open_paren) {
  std::string member;
  int depth = 0;
  for (std::size_t i = open_paren; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) break;
    const std::string& t = tokens[i].text;
    if (!t.empty() &&
        (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_') && t != "this")
      member = t;
  }
  return member;
}

/// One resolved guard acquisition inside a function body.
struct GuardSite {
  std::string member;
  std::string lock_class;
  int rank = -1;
  int line = 0;
};

/// All guard declarations in `def` whose member resolves to a ranked class.
std::vector<GuardSite> ranked_guards(const FileIndex& index, const FunctionDef& def,
                                     const MemberClasses& members, const RankTable& table) {
  std::vector<GuardSite> sites;
  const std::vector<Token>& tokens = index.tokens;
  for (std::size_t i = def.body_begin; i <= def.body_end && i < tokens.size(); ++i) {
    const std::size_t open = guard_open_paren(tokens, i, /*any_guard_kind=*/true);
    if (open == 0) continue;
    const std::string member = guarded_member(tokens, open);
    const std::string cls = class_of_member(members, member);
    if (cls.empty()) continue;
    sites.push_back({member, cls, table.rank_of(cls), tokens[i].line});
    i = open;
  }
  return sites;
}

void rule_lock_rank_order(const std::vector<SourceFile>& files,
                          const std::vector<FileIndex>& indices, std::vector<Finding>& out) {
  // Cross-check the declared ranks (support/lockdep.hpp) against the guard
  // nesting visible in source: acquiring a lower-ranked class while a
  // higher-ranked one is held — directly or one call hop away — is exactly
  // what the runtime witness would abort on, caught at lint time instead.
  RankTable table;
  for (std::size_t i = 0; i < files.size(); ++i)
    if (ends_with(files[i].path, "support/lockdep.hpp")) table = parse_rank_table(indices[i]);
  if (table.empty()) return;  // tree without a rank table (synthetic tests)

  // Member maps per file; sibling .hpp/.cpp pairs share declarations.
  std::vector<MemberClasses> own(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) own[i] = parse_member_classes(indices[i]);
  const auto stem = [](const std::string& path) {
    const auto dot = path.rfind('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
  };
  std::vector<MemberClasses> effective = own;
  for (std::size_t i = 0; i < files.size(); ++i)
    for (std::size_t j = 0; j < files.size(); ++j)
      if (i != j && stem(files[i].path) == stem(files[j].path))
        effective[i].insert(effective[i].end(), own[j].begin(), own[j].end());

  for (std::size_t f = 0; f < files.size(); ++f) {
    const FileIndex& index = indices[f];
    const MemberClasses& members = effective[f];
    if (members.empty()) continue;
    const std::vector<Token>& tokens = index.tokens;
    for (const FunctionDef& def : index.functions) {
      int depth = 0;
      std::vector<std::pair<int, GuardSite>> held;  // (brace depth, guard)
      std::size_t call_cursor = 0;
      for (std::size_t i = def.body_begin; i <= def.body_end && i < tokens.size(); ++i) {
        const std::string& t = tokens[i].text;
        if (t == "{") {
          ++depth;
          continue;
        }
        if (t == "}") {
          --depth;
          while (!held.empty() && held.back().first > depth) held.pop_back();
          continue;
        }
        const std::size_t open = guard_open_paren(tokens, i, /*any_guard_kind=*/true);
        if (open != 0) {
          const std::string member = guarded_member(tokens, open);
          const std::string cls = class_of_member(members, member);
          if (!cls.empty()) {
            const GuardSite site{member, cls, table.rank_of(cls), tokens[i].line};
            for (const auto& [d, outer] : held) {
              if (outer.rank < 0 || site.rank < 0) continue;
              if (outer.lock_class == site.lock_class) continue;
              if (site.rank < outer.rank)
                out.push_back(
                    {files[f].path, site.line, "lock-rank-order",
                     "acquiring '" + site.lock_class + "' (rank " + std::to_string(site.rank) +
                         ") while holding '" + outer.lock_class + "' (rank " +
                         std::to_string(outer.rank) +
                         ", line " + std::to_string(outer.line) +
                         "); the rank table in support/lockdep.hpp orders acquisitions "
                         "low-to-high — reorder the guards or fix the table"});
            }
            held.emplace_back(depth, site);
          }
          i = open;
          continue;
        }
        if (held.empty()) continue;
        // One hop: a file-local helper acquiring a lower-ranked guard.
        while (call_cursor < def.calls.size() && def.calls[call_cursor].token_index < i)
          ++call_cursor;
        if (call_cursor >= def.calls.size() || def.calls[call_cursor].token_index != i)
          continue;
        const CallSite& call = def.calls[call_cursor];
        if (call.member && call.receiver != "this") continue;
        const FunctionDef* helper = find_function(index, call.callee);
        if (helper == nullptr || helper == &def) continue;
        for (const GuardSite& inner : ranked_guards(index, *helper, members, table)) {
          if (inner.rank < 0) continue;
          bool flagged = false;
          for (const auto& [d, outer] : held) {
            if (outer.rank < 0 || outer.lock_class == inner.lock_class) continue;
            if (inner.rank < outer.rank) {
              out.push_back(
                  {files[f].path, call.line, "lock-rank-order",
                   "call to " + helper->name + "() while holding '" + outer.lock_class +
                       "' (rank " + std::to_string(outer.rank) + "), and " + helper->name +
                       "() acquires '" + inner.lock_class + "' (rank " +
                       std::to_string(inner.rank) + ", line " + std::to_string(inner.line) +
                       "); the rank table in support/lockdep.hpp orders acquisitions "
                       "low-to-high — release the outer lock first or fix the table"});
              flagged = true;
              break;
            }
          }
          if (flagged) break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hot-path-std-function
// ---------------------------------------------------------------------------

/// Methods on the per-dispatch hot path: every admission, scheduling round,
/// attempt registration and completion crosses these, so a std::function
/// there means a type-erasing heap allocation (and an indirect call the
/// optimiser cannot devirtualise) per task. Coordinator-rate entry points
/// like ThreadBackend::drive legitimately take std::function — once per
/// wait, not once per task — and stay off this list.
bool hot_path_method(const std::string& qualifier, const std::string& name) {
  if (qualifier == "Engine") {
    static const char* kHot[] = {"on_submitted",    "on_submitted_batch", "make_ready",
                                 "push_ready",      "remove_from_ready",  "schedule",
                                 "apply_study_policy", "register_attempt", "prepare_body",
                                 "complete_attempt", "conclude_attempt"};
    for (const char* method : kHot)
      if (name == method) return true;
    return false;
  }
  static const char* kHot[] = {"launch", "run_job"};
  for (const char* method : kHot)
    if (name == method) return true;
  return false;
}

void rule_hot_path_std_function(const SourceFile& file, const std::vector<std::string>& lines,
                                std::vector<Finding>& out) {
  std::string qualifier;
  if (ends_with(file.path, "runtime/engine.cpp"))
    qualifier = "Engine";
  else if (ends_with(file.path, "runtime/thread_backend.cpp"))
    qualifier = "ThreadBackend";
  else
    return;
  const std::string marker = qualifier + "::";
  std::string current;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Update the current method from *every* "<ret> Qual::name(" on the
    // line before flagging, so a definition whose own signature carries a
    // std::function is attributed to itself, not the previous method
    // (e.g. "bool ThreadBackend::drive(const std::function<bool()>&...").
    for (auto def = line.find(marker); def != std::string::npos;
         def = line.find(marker, def + 1)) {
      if (def > 0 && ident_char(line[def - 1])) continue;
      const auto name_start = def + marker.size();
      auto name_end = name_start;
      while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
      if (name_end < line.size() && line[name_end] == '(' && name_end > name_start)
        current = line.substr(name_start, name_end - name_start);
    }
    if (find_word(line, "std::function") == std::string::npos) continue;
    if (!hot_path_method(qualifier, current)) continue;
    out.push_back({file.path, static_cast<int>(i + 1), "hot-path-std-function",
                   "std::function on the per-dispatch hot path (" + qualifier + "::" + current +
                       "); it type-erases through a heap allocation per task — use a "
                       "function pointer plus void* context (see StealPool::Sink) or a "
                       "pre-bound member"});
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-kind-coverage (cross-file)
// ---------------------------------------------------------------------------

struct EnumMember {
  std::string name;
  int line = 0;
};

/// Parse the members of `enum class EventKind` from masked trace.hpp text.
std::vector<EnumMember> parse_event_kinds(const std::vector<std::string>& lines) {
  std::vector<EnumMember> members;
  bool in_enum = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (!in_enum) {
      if (contains(line, "enum class EventKind")) in_enum = true;
      continue;
    }
    if (contains(line, "};")) break;
    // Member lines look like "  Name," or "  Name = 3,".
    std::size_t p = 0;
    while (p < line.size() && std::isspace(static_cast<unsigned char>(line[p]))) ++p;
    if (p >= line.size() || !ident_char(line[p]) ||
        std::isdigit(static_cast<unsigned char>(line[p])))
      continue;
    auto end = p;
    while (end < line.size() && ident_char(line[end])) ++end;
    members.push_back({line.substr(p, end - p), static_cast<int>(i + 1)});
  }
  return members;
}

void rule_trace_kind_coverage(const std::vector<SourceFile>& files,
                              const std::vector<std::vector<std::string>>& masked_lines,
                              std::vector<Finding>& out) {
  const SourceFile* hpp = nullptr;
  const std::vector<std::string>* hpp_lines = nullptr;
  const SourceFile* cpp = nullptr;
  const std::vector<std::string>* cpp_lines = nullptr;
  const SourceFile* prv = nullptr;
  const std::vector<std::string>* prv_lines = nullptr;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (ends_with(files[i].path, "trace/trace.hpp")) {
      hpp = &files[i];
      hpp_lines = &masked_lines[i];
    } else if (ends_with(files[i].path, "trace/trace.cpp")) {
      cpp = &files[i];
      cpp_lines = &masked_lines[i];
    } else if (ends_with(files[i].path, "trace/prv_writer.cpp")) {
      prv = &files[i];
      prv_lines = &masked_lines[i];
    }
  }
  if (hpp == nullptr || hpp_lines == nullptr) return;  // tree without the trace subsystem
  const std::vector<EnumMember> members = parse_event_kinds(*hpp_lines);
  if (members.empty()) {
    out.push_back({hpp->path, 1, "trace-kind-coverage",
                   "could not parse any members of enum class EventKind"});
    return;
  }

  // kEventKindCount must name the *last* member, so exhaustive loops over
  // [0, kEventKindCount) cannot silently truncate when a kind is appended.
  {
    bool defined = false;
    for (std::size_t i = 0; i < hpp_lines->size(); ++i) {
      const std::string& line = (*hpp_lines)[i];
      if (find_word(line, "kEventKindCount") == std::string::npos) continue;
      if (!contains(line, "EventKind::")) continue;
      defined = true;
      if (!contains(line, "EventKind::" + members.back().name))
        out.push_back({hpp->path, static_cast<int>(i + 1), "trace-kind-coverage",
                       "kEventKindCount must be defined from the last EventKind member (" +
                           members.back().name + ")"});
      break;
    }
    if (!defined)
      out.push_back({hpp->path, members.back().line, "trace-kind-coverage",
                     "missing kEventKindCount defined from the last EventKind member (" +
                         members.back().name + ")"});
  }

  if (cpp == nullptr || cpp_lines == nullptr) {
    out.push_back({hpp->path, 1, "trace-kind-coverage",
                   "trace/trace.cpp (kind_name switch) not found next to trace.hpp"});
    return;
  }
  for (const EnumMember& m : members) {
    const std::string want = "case EventKind::" + m.name;
    bool found = false;
    for (const std::string& line : *cpp_lines) {
      const auto pos = find_word(line, want);
      if (pos == std::string::npos) continue;
      const auto after = pos + want.size();
      if (after < line.size() && ident_char(line[after])) continue;  // longer member name
      found = true;
      break;
    }
    if (!found)
      out.push_back({cpp->path, m.line, "trace-kind-coverage",
                     "EventKind::" + m.name +
                         " has no case in the kind_name switch (trace.cpp), so the .pcf "
                         "label table would miss it"});
  }

  // The .pcf label table must be generated by iterating kEventKindCount, not
  // by a hand-maintained list that can drift from the enum.
  if (prv != nullptr && prv_lines != nullptr) {
    bool uses_count = false;
    for (const std::string& line : *prv_lines)
      if (find_word(line, "kEventKindCount") != std::string::npos) uses_count = true;
    if (!uses_count)
      out.push_back({prv->path, 1, "trace-kind-coverage",
                     "prv_writer.cpp must emit .pcf labels by iterating kEventKindCount "
                     "so every EventKind gets a label"});
  }
}

}  // namespace

namespace {

/// If the `"` at `quote` opens a raw string literal, return the index of
/// its `R` prefix character (handling the u8R / uR / UR / LR encoding
/// prefixes); std::string::npos otherwise.
std::size_t raw_string_prefix(const std::string& text, std::size_t quote) {
  if (quote == 0 || text[quote - 1] != 'R') return std::string::npos;
  std::size_t start = quote - 1;  // the 'R'
  if (start >= 2 && text[start - 2] == 'u' && text[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (text[start - 1] == 'u' || text[start - 1] == 'U' || text[start - 1] == 'L')) {
    start -= 1;
  }
  if (start > 0 && ident_char(text[start - 1])) return std::string::npos;  // e.g. `FooR"`
  return quote - 1;
}

}  // namespace

std::string mask_comments_and_literals(const std::string& text) {
  std::string out = text;
  enum class State { Code, LineComment, BlockComment, String, Char };
  State state = State::Code;
  std::size_t i = 0;
  const auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < out.size()) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::LineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::BlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"' && raw_string_prefix(out, i) != std::string::npos) {
          // Raw string literal, any delimiter: R"delim( ... )delim". The
          // whole literal (delimiters included) is blanked in one pass so
          // multi-line content can never leak into rule matching.
          std::size_t p = i + 1;
          std::string delim;
          while (p < out.size() && out[p] != '(' && delim.size() < 16) delim += out[p++];
          const std::string closer = ")" + delim + "\"";
          const std::size_t close = out.find(closer, p);
          const std::size_t end =
              close == std::string::npos ? out.size() : close + closer.size();
          for (std::size_t q = i + 1; q < end; ++q) blank(q);
          i = end;
        } else if (c == '"') {
          state = State::String;
          ++i;
        } else if (c == '\'') {
          state = State::Char;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::LineComment:
        if (c == '\\' && next == '\n') {
          // Backslash-continued // comment: the next line is comment too.
          blank(i);
          i += 2;
        } else if (c == '\n') {
          state = State::Code;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::BlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          i += 2;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::String:
        if (c == '\\' && i + 1 < out.size()) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"') {
          ++i;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::Char:
        if (c == '\\' && i + 1 < out.size()) {
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          ++i;
          state = State::Code;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_files(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::vector<std::vector<std::string>> masked;
  std::vector<FileIndex> indices;
  masked.reserve(files.size());
  indices.reserve(files.size());
  for (const SourceFile& file : files) {
    const std::string masked_text = mask_comments_and_literals(file.content);
    masked.push_back(split_lines(masked_text));
    indices.push_back(build_file_index(masked_text));
  }

  std::vector<SourceFile> normalised_files;
  normalised_files.reserve(files.size());
  for (const SourceFile& file : files) normalised_files.push_back({normalise(file.path), {}});

  for (std::size_t i = 0; i < files.size(); ++i) {
    rule_raw_lock_call(normalised_files[i], masked[i], findings);
    rule_raw_std_mutex(normalised_files[i], masked[i], findings);
    rule_nondeterministic_rng(normalised_files[i], masked[i], findings);
    rule_raw_runtime_ref(normalised_files[i], masked[i], findings);
    rule_callback_in_engine_mutation(normalised_files[i], masked[i], findings);
    rule_registry_lock_blocking_call(normalised_files[i], indices[i], findings);
    rule_hot_path_std_function(normalised_files[i], masked[i], findings);
  }

  rule_trace_kind_coverage(normalised_files, masked, findings);
  rule_lock_rank_order(normalised_files, indices, findings);

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  // Overlapping function definitions (a heuristic parse can nest them) may
  // report the same violation twice; findings are de-duplicated, not
  // suppressed.
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule && a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

TreeScan scan_tree(const std::string& root) {
  TreeScan scan;
  std::error_code root_ec;
  if (!fs::is_directory(root, root_ec)) {
    scan.errors.push_back("root is not a directory: " + root);
    return scan;
  }
  std::vector<SourceFile> files;
  static const char* kSubtrees[] = {"src", "tools", "bench"};
  for (const char* subtree : kSubtrees) {
    const fs::path dir = fs::path(root) / subtree;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") continue;
      const std::string rel = normalise(fs::relative(it->path(), root, ec).string());
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) {
        scan.errors.push_back("cannot read " + rel);
        continue;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      if (in.bad()) {
        scan.errors.push_back("read error in " + rel);
        continue;
      }
      files.push_back({rel, buf.str()});
    }
    if (ec) scan.errors.push_back("walk error under " + (fs::path(root) / subtree).string() +
                                  ": " + ec.message());
  }
  scan.files_scanned = files.size();
  if (files.empty())
    scan.errors.push_back("no C++ sources found under " + root +
                          " (expected src/, tools/ or bench/ subtrees)");
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });
  scan.findings = lint_files(files);
  return scan;
}

std::vector<Finding> lint_tree(const std::string& root) { return scan_tree(root).findings; }

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings)
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  return out.str();
}

}  // namespace chpo::lint
