// Lightweight C++ token stream + per-file function/call index for the
// cross-function lint rules.
//
// chpo_lint's original rules were masked *line* scanners: enough to spot
// `server_.step(...)` textually under a MutexLock, but blind the moment
// the blocking call moves into a helper invoked from the guarded scope.
// This header adds the minimal structure needed to see one level deeper:
//
//   tokenize()          masked text -> identifiers / punctuation with
//                       line numbers (`::` and `->` are single tokens).
//   build_file_index()  token stream -> the function definitions in the
//                       file (qualified name, body token range) and, for
//                       each, its direct call sites (callee name, whether
//                       it was a member call and on what receiver).
//
// Together they give rules a one-level call graph *within* a file: "run()
// holds a guard and calls pump_locked(); pump_locked() calls
// server_.step()" becomes checkable. The parser is deliberately
// heuristic — no preprocessor, no templates, no overload resolution — but
// it is exact on the shapes this codebase uses, and the rules built on it
// fail toward silence (an unrecognised definition is simply not indexed),
// never toward false findings.
//
// Input must already be masked by mask_comments_and_literals(): the
// tokenizer treats the text as comment- and literal-free.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace chpo::lint {

struct Token {
  std::string text;
  int line = 0;  ///< 1-based
};

/// Split masked source text into tokens: identifiers/numbers, and
/// punctuation as single characters except the joined `::` and `->`.
std::vector<Token> tokenize(const std::string& masked_text);

/// One direct call inside a function body: `callee(...)`.
struct CallSite {
  std::string callee;    ///< unqualified callee name
  bool member = false;   ///< invoked via `.` or `->`
  std::string receiver;  ///< token before the `.`/`->` ("" for free calls)
  int line = 0;
  std::size_t token_index = 0;  ///< index of the callee token
};

/// One function definition found in a file.
struct FunctionDef {
  std::string name;       ///< unqualified (e.g. "run", "~SocketDaemon")
  std::string qualified;  ///< as written (e.g. "SocketDaemon::run")
  int line = 0;           ///< line of the name token
  std::size_t body_begin = 0;  ///< token index of the opening '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  std::vector<CallSite> calls;  ///< direct calls inside [body_begin, body_end]
};

/// Token stream plus the function definitions recognised in it.
struct FileIndex {
  std::vector<Token> tokens;
  std::vector<FunctionDef> functions;
};

/// Build the index for one masked file.
FileIndex build_file_index(const std::string& masked_text);

/// Find a function by unqualified name (first match; nullptr if absent).
/// This is the one-hop call-graph lookup: a free call `helper()` or a
/// `this->helper()` from another function in the same file resolves here.
const FunctionDef* find_function(const FileIndex& index, const std::string& name);

}  // namespace chpo::lint
