// chpo_lint — repo-invariant linter.
//
// Enforces, at line level and with zero external dependencies, the
// conventions the compiler cannot check (clang's -Wthread-safety covers
// lock discipline *types*; these rules cover repo-specific idioms):
//
//   trace-kind-coverage        every trace::EventKind member has a
//                              kind_name() case in trace.cpp (which is what
//                              the .pcf writer iterates), kEventKindCount
//                              names the last member, and prv_writer.cpp
//                              emits labels exhaustively via the counter.
//   raw-lock-call              no .lock()/.unlock() (or shared variants)
//                              outside the RAII guards in
//                              support/thread_annotations.hpp.
//   raw-std-mutex              no std::mutex / std::shared_mutex /
//                              std::condition_variable members in src/ —
//                              use the annotated chpo::Mutex wrappers so
//                              the thread-safety analysis can see locks.
//   nondeterministic-rng       no std::random_device / rand() / srand() in
//                              deterministic runtime/reuse paths (replay,
//                              lineage recovery and the content-addressed
//                              cache all depend on seed-derived RNG only).
//   raw-runtime-ref            no rt::Runtime& in src/hpo/ or src/service/
//                              — drivers and the study manager speak
//                              through rt::StudySession handles so N
//                              studies can multiplex one engine
//                              (RuntimeOptions and by-value Runtime
//                              construction remain fine).
//   callback-in-engine-mutation  engine.cpp may invoke the terminal
//                              listener (on_terminal_) only inside
//                              flush_notifications() — never from a
//                              mutation path holding TaskRecord references.
//   registry-lock-blocking-call  src/daemon/ may not call a blocking
//                              Server/StudyManager/journal method (.handle,
//                              .step, .step_for, .run_all, .wait_any*,
//                              .wait_on, .barrier, .sync) — or fsync() —
//                              while a MutexLock guard is live: the
//                              connection-registry/queue locks are for
//                              moving data across threads, and holding one
//                              across an engine call wedges the I/O thread
//                              behind the engine (lock, move, unlock, act).
//                              Cross-function: a call to a file-local
//                              helper from the guarded scope is followed
//                              one hop, so hiding the blocking call behind
//                              a helper does not evade the rule.
//                              daemon/journal.cpp is the one documented
//                              exemption — its lock IS the fsync barrier.
//   lock-rank-order            the rank table in support/lockdep.hpp is
//                              the blessed global acquisition order; this
//                              rule parses it, maps each `Mutex
//                              member{lockdep::kClass}` declaration
//                              (sibling .hpp/.cpp pairs share members) and
//                              flags any guard nesting visible in source —
//                              directly or one call hop away — that
//                              acquires a lower-ranked class while a
//                              higher-ranked one is held. The runtime
//                              witness (CHPO_LOCKDEP) checks the orders
//                              that only materialize at runtime; this rule
//                              catches the ones visible statically, on
//                              every build, with no test coverage needed.
//
// Header self-containedness (each public header compiles as its own
// translation unit) is the one rule not here: it needs a compiler, so it is
// generated into build targets by cmake/HeaderSelfCheck.cmake.
//
// Comments and string/char literals are masked before matching, so rule
// text in comments (or this very tool's pattern strings) never self-flags.
// The cross-function rules run on a token stream + per-file function index
// (lint/index.hpp) built from the same masked text.
#pragma once

#include <string>
#include <vector>

namespace chpo::lint {

struct Finding {
  std::string file;  ///< path as scanned (relative to the root passed in)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// One in-memory source file (the unit tests feed synthetic trees).
struct SourceFile {
  std::string path;     ///< used for rule dispatch (suffix matching)
  std::string content;  ///< raw text
};

/// Replace comment bodies and string/char literal contents with spaces,
/// preserving line structure. Handles //, /* */ (including multi-line),
/// backslash-continued line comments, escapes, and raw strings with
/// arbitrary delimiters and encoding prefixes (R"( )", R"x( )x", u8R"...).
std::string mask_comments_and_literals(const std::string& text);

/// Run every rule over the given files.
std::vector<Finding> lint_files(const std::vector<SourceFile>& files);

/// Result of scanning a tree on disk: findings plus the I/O truth CI needs
/// to distinguish "clean" from "didn't actually scan anything".
struct TreeScan {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< missing root, unreadable files, empty scan
};

/// Collect .hpp/.cpp files under root/src, root/tools and root/bench (the
/// subtrees that exist) and lint them. Paths in findings are relative to
/// `root`. Records an error when the root is not a directory, a source
/// file cannot be read, or no source files were found at all.
TreeScan scan_tree(const std::string& root);

/// Back-compat wrapper around scan_tree(): findings only, I/O problems
/// ignored (a missing subtree is simply an empty result). The CLI uses
/// scan_tree() so CI gets a hard failure instead of a silent no-op.
std::vector<Finding> lint_tree(const std::string& root);

/// "file:line: [rule] message" per finding.
std::string format_findings(const std::vector<Finding>& findings);

}  // namespace chpo::lint
