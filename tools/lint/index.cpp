#include "lint/index.hpp"

#include <cctype>

namespace chpo::lint {

namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }

bool is_ident(const std::string& t) { return !t.empty() && ident_start(t[0]); }

/// Keywords that look like `name (` but never start a function definition
/// or a call.
bool control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" || t == "catch" ||
         t == "return" || t == "sizeof" || t == "alignof" || t == "decltype" || t == "new" ||
         t == "delete" || t == "throw" || t == "static_assert" || t == "assert" ||
         t == "defined" || t == "constexpr" || t == "noexcept" || t == "alignas";
}

/// Find the matching `)` for the `(` at `open` (returns tokens.size() when
/// unbalanced).
std::size_t match_paren(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

/// From the `(` at `open`, decide whether a function *body* follows the
/// parameter list — skipping cv-qualifiers, ref-qualifiers, noexcept,
/// attributes/annotation macros (CHPO_*), trailing return types, and
/// constructor initializer lists. Returns the token index of the body's
/// `{`, or tokens.size() when this is a declaration / expression instead.
std::size_t find_body_brace(const std::vector<Token>& tokens, std::size_t open) {
  std::size_t i = match_paren(tokens, open);
  if (i >= tokens.size()) return tokens.size();
  ++i;
  int depth = 0;  // parens inside noexcept(...), CHPO_REQUIRES(...), ctor inits
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(") ++depth;
    if (t == ")") --depth;
    if (depth > 0) continue;
    if (t == "{") return i;
    // `= default`, `= delete`, `= 0`, or an initializer: not a body.
    if (t == ";" || t == "=") return tokens.size();
  }
  return tokens.size();
}

/// Find the matching `}` for the `{` at `open`.
std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}" && --depth == 0) return i;
  }
  return tokens.size();
}

/// Walk backward from the name token at `name_pos` over a qualified-id
/// (`A::B::name`, possibly `~name`): returns the index of the first token
/// of the id and fills `qualified`.
std::size_t qualified_begin(const std::vector<Token>& tokens, std::size_t name_pos,
                            std::string& qualified) {
  std::size_t begin = name_pos;
  qualified = tokens[name_pos].text;
  if (begin > 0 && tokens[begin - 1].text == "~") {
    --begin;
    qualified = "~" + qualified;
  }
  while (begin >= 2 && tokens[begin - 1].text == "::" && is_ident(tokens[begin - 2].text)) {
    qualified = tokens[begin - 2].text + "::" + qualified;
    begin -= 2;
  }
  return begin;
}

/// Tokens that may legitimately precede a function-definition header
/// (type names, `>`, `*`, `&`, statement boundaries, access specifiers).
/// Anything expression-like (`.`/`->`/`(`/`,`/operators) means the id is
/// part of an expression, not a definition.
bool plausible_definition_prefix(const std::vector<Token>& tokens, std::size_t begin) {
  if (begin == 0) return true;
  const std::string& p = tokens[begin - 1].text;
  if (p == "." || p == "->" || p == "(" || p == "," || p == "=" || p == "::" || p == "!" ||
      p == "+" || p == "-" || p == "?" || p == "<" || p == "|" || p == "[")
    return false;
  return true;
}

}  // namespace

std::vector<Token> tokenize(const std::string& masked_text) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = masked_text.size();
  while (i < n) {
    const char c = masked_text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      std::size_t end = i;
      while (end < n && ident_char(masked_text[end])) ++end;
      tokens.push_back({masked_text.substr(i, end - i), line});
      i = end;
      continue;
    }
    const char next = i + 1 < n ? masked_text[i + 1] : '\0';
    if (c == ':' && next == ':') {
      tokens.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && next == '>') {
      tokens.push_back({"->", line});
      i += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return tokens;
}

FileIndex build_file_index(const std::string& masked_text) {
  FileIndex index;
  index.tokens = tokenize(masked_text);
  const std::vector<Token>& tokens = index.tokens;

  // Pass 1: function definitions — `qualified-id ( params ) [stuff] {`.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i + 1].text != "(") continue;
    const std::string& name = tokens[i].text;
    if (!is_ident(name) || control_keyword(name)) continue;
    std::string qualified;
    const std::size_t begin = qualified_begin(tokens, i, qualified);
    if (!plausible_definition_prefix(tokens, begin)) continue;
    const std::size_t body = find_body_brace(tokens, i + 1);
    if (body >= tokens.size()) continue;
    FunctionDef def;
    def.name = (i > 0 && tokens[i - 1].text == "~") ? "~" + name : name;
    def.qualified = qualified;
    def.line = tokens[i].line;
    def.body_begin = body;
    def.body_end = match_brace(tokens, body);
    index.functions.push_back(def);
    i = body;  // resume inside the body: nested lambdas/defs are rare and
               // their calls still attribute to the enclosing function
  }

  // Pass 2: direct call sites per function body.
  for (FunctionDef& def : index.functions) {
    for (std::size_t i = def.body_begin + 1; i + 1 < def.body_end; ++i) {
      if (tokens[i + 1].text != "(") continue;
      const std::string& name = tokens[i].text;
      if (!is_ident(name) || control_keyword(name)) continue;
      CallSite call;
      call.callee = name;
      call.line = tokens[i].line;
      call.token_index = i;
      // Receiver: the token before the id (skipping a `~` and the
      // qualifier chain) tells member call from free call.
      std::string qualified;
      const std::size_t begin = qualified_begin(tokens, i, qualified);
      if (begin > 0 &&
          (tokens[begin - 1].text == "." || tokens[begin - 1].text == "->")) {
        call.member = true;
        if (begin > 1) call.receiver = tokens[begin - 2].text;
      }
      def.calls.push_back(call);
    }
  }
  return index;
}

const FunctionDef* find_function(const FileIndex& index, const std::string& name) {
  for (const FunctionDef& def : index.functions)
    if (def.name == name) return &def;
  return nullptr;
}

}  // namespace chpo::lint
