// libFuzzer smoke target: jsonlite CRC record framing (jsonlite/record.hpp).
//
// decode_record() parses untrusted "<crc32 hex> <json>" lines (the journal
// on-disk format) and read_records() replays a whole journal file, keeping
// everything before the first torn/corrupt line. Invariants under fuzz:
// neither may crash; a line that decodes ok must survive an
// encode_record() round trip; replay never reports more bytes than the
// file holds and is torn iff it carries a torn_error.
//
// Built only under -DCHPO_FUZZ=ON (clang); see tools/CMakeLists.txt.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "jsonlite/record.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    __builtin_printf("fuzz_records invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Per-line decode: split on '\n' exactly as the replay path does.
  std::size_t start = 0;
  while (start <= input.size()) {
    const std::size_t nl = input.find('\n', start);
    const std::string_view line =
        input.substr(start, nl == std::string_view::npos ? input.size() - start
                                                         : nl - start);
    const chpo::json::RecordDecode decode = chpo::json::decode_record(line);
    require(decode.ok() == decode.error.empty(), "decode neither ok nor error");
    if (decode.ok()) {
      // A valid record re-encodes to a line that decodes to the same JSON.
      const std::string encoded = chpo::json::encode_record(decode.value);
      require(!encoded.empty() && encoded.back() == '\n', "encode_record not newline-framed");
      const chpo::json::RecordDecode again =
          chpo::json::decode_record(std::string_view(encoded).substr(0, encoded.size() - 1));
      require(again.ok(), "round-tripped record fails to decode");
      require(chpo::json::serialize(again.value) == chpo::json::serialize(decode.value),
              "round trip changed the value");
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }

  // Whole-file replay through read_records(): write the input to a scratch
  // file (libFuzzer is single-process here; a fixed pid-keyed name is safe).
  char path[64];
  std::snprintf(path, sizeof(path), "/tmp/chpo_fuzz_records.%d", static_cast<int>(::getpid()));
  std::FILE* out = std::fopen(path, "wb");
  if (out == nullptr) return 0;
  if (size > 0) std::fwrite(data, 1, size, out);
  std::fclose(out);

  const chpo::json::RecordReplay replay = chpo::json::read_records(path);
  require(replay.torn() == !replay.torn_error.empty(), "torn() disagrees with torn_error");
  require(replay.torn_bytes <= size, "torn_bytes exceeds file size");
  if (!replay.torn()) require(replay.torn_bytes == 0, "untorn replay reports torn bytes");
  ::unlink(path);
  return 0;
}
