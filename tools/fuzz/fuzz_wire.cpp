// libFuzzer smoke target: wire::LineDecoder (jsonlite/wire.hpp).
//
// The decoder sits on the daemon's socket read path, fed by an untrusted
// peer, so it must never crash, never buffer unboundedly, and never emit
// a frame that is neither ok nor an error. The first two input bytes pick
// a (small) line cap and a chunk size so the fuzzer explores split points
// and the oversized-line discard mode, not just whole-buffer feeds.
//
// Built only under -DCHPO_FUZZ=ON (clang); see tools/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "jsonlite/wire.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    __builtin_printf("fuzz_wire invariant violated: %s\n", what);
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size < 2) return 0;
  chpo::json::LineDecoder decoder;
  // Tiny caps (1..64 bytes) make the oversized-line path reachable with
  // short inputs; the default 1 MiB cap would never trip here.
  const std::size_t max_line = 1 + data[0] % 64;
  const std::size_t chunk = 1 + data[1] % 7;
  decoder.set_max_line_bytes(max_line);
  std::string_view stream(reinterpret_cast<const char*>(data + 2), size - 2);

  while (!stream.empty()) {
    const std::size_t take = stream.size() < chunk ? stream.size() : chunk;
    decoder.feed(stream.substr(0, take));
    stream.remove_prefix(take);
    // Bounded buffering: a partial line may sit in the buffer, but never
    // more than the cap (oversized lines must flip into discard mode).
    require(decoder.pending_bytes() <= decoder.max_line_bytes(),
            "pending_bytes exceeds max_line_bytes");
    while (auto frame = decoder.next()) {
      // Every frame is exactly one of: a parsed value, or an error.
      require(frame->ok() == frame->error.empty(), "frame neither ok nor error");
      if (frame->fatal) require(!frame->ok(), "fatal frame claims ok");
    }
  }
  // Drain after EOF-equivalent: next() must terminate (no frame invented
  // from an incomplete trailing line).
  while (decoder.next()) {
  }
  require(decoder.pending_bytes() <= decoder.max_line_bytes(),
          "pending_bytes exceeds max_line_bytes after drain");
  return 0;
}
