// chpo_lint CLI: lint the repo tree rooted at argv[1] (default ".").
//
// Exit codes — CI keys off them, so "clean" and "didn't run" must differ:
//   0  scanned sources, zero findings
//   1  findings reported (printed to stderr)
//   2  the scan itself failed: missing root, unreadable files, or no
//      sources found at all (a silent empty scan would let a typo'd path
//      pass every job while checking nothing)
#include <cstdio>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const chpo::lint::TreeScan scan = chpo::lint::scan_tree(root);
  if (!scan.errors.empty()) {
    for (const std::string& error : scan.errors)
      std::fprintf(stderr, "chpo_lint: error: %s\n", error.c_str());
    std::fprintf(stderr, "chpo_lint: scan failed (%zu file(s) scanned in %s)\n",
                 scan.files_scanned, root.c_str());
    return 2;
  }
  if (scan.findings.empty()) {
    std::printf("chpo_lint: OK (%zu files in %s)\n", scan.files_scanned, root.c_str());
    return 0;
  }
  std::fputs(chpo::lint::format_findings(scan.findings).c_str(), stderr);
  std::fprintf(stderr, "chpo_lint: %zu finding(s) in %s\n", scan.findings.size(), root.c_str());
  return 1;
}
