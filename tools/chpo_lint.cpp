// chpo_lint CLI: lint the repo tree rooted at argv[1] (default ".").
// Exits non-zero when any finding is reported; wired into ctest and every
// CI job so the invariants in tools/lint/lint.hpp hold on every commit.
#include <cstdio>
#include <string>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  const auto findings = chpo::lint::lint_tree(root);
  if (findings.empty()) {
    std::printf("chpo_lint: OK (%s)\n", root.c_str());
    return 0;
  }
  std::fputs(chpo::lint::format_findings(findings).c_str(), stderr);
  std::fprintf(stderr, "chpo_lint: %zu finding(s) in %s\n", findings.size(), root.c_str());
  return 1;
}
