// chpo_serve — the HPO service daemon.
//
// Owns ONE Runtime (and its StudyManager) for the host and serves the
// NDJSON protocol (src/daemon/protocol.hpp) over a Unix domain socket:
//
//   chpo_serve --socket /tmp/chpo.sock --state-dir /var/lib/chpo
//              [--simulate] [--machine mn4 --nodes 4] [--max-active 2]
//
// Clients (chpo_ctl, or anything that can write JSON lines to a socket)
// submit studies for named tenants, stream progress, pause/resume/kill,
// and read per-tenant accounting. `chpo_ctl shutdown` checkpoints every
// study and writes a manifest; restarting chpo_serve with the same
// --state-dir resumes the interrupted studies from their checkpoints.
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "cluster/cluster.hpp"
#include "daemon/server.hpp"
#include "daemon/socket_daemon.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "support/args.hpp"
#include "support/log.hpp"

namespace {

using namespace chpo;

int serve(const ArgParser& args) {
  // A daemon should say what it is doing: lifecycle lines (listening,
  // resume, drain) log at Info, which the library default suppresses.
  const std::string log_level = args.get("log-level", "info");
  if (log_level == "debug")
    set_log_level(LogLevel::Debug);
  else if (log_level == "info")
    set_log_level(LogLevel::Info);
  else if (log_level == "warn")
    set_log_level(LogLevel::Warn);
  else
    throw std::invalid_argument("unknown --log-level '" + log_level + "' (debug | info | warn)");

  const std::string socket_path = args.get("socket", "/tmp/chpo.sock");
  const std::string state_dir = args.get("state-dir");
  if (!state_dir.empty()) std::filesystem::create_directories(state_dir);

  const std::string dataset_name = args.get("dataset", "mnist");
  const auto n_train = static_cast<std::size_t>(args.get_int("train-samples", 600));
  const auto n_test = static_cast<std::size_t>(args.get_int("test-samples", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  ml::Dataset dataset;
  ml::WorkloadModel workload;
  if (dataset_name == "mnist") {
    dataset = ml::make_mnist_like(n_train, n_test, seed);
    workload = ml::mnist_paper_model();
  } else if (dataset_name == "cifar") {
    dataset = ml::make_cifar_like(n_train, n_test, seed);
    workload = ml::cifar_paper_model();
  } else {
    throw std::invalid_argument("unknown --dataset '" + dataset_name + "' (mnist | cifar)");
  }

  daemon::ServerOptions options;
  const std::string machine = args.get("machine", "local");
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 1));
  if (machine == "mn4")
    options.manager.runtime.cluster = cluster::marenostrum4(nodes);
  else if (machine == "minotauro")
    options.manager.runtime.cluster = cluster::minotauro(nodes);
  else if (machine == "power9")
    options.manager.runtime.cluster = cluster::power9(nodes);
  else if (machine == "local") {
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    options.manager.runtime.cluster = cluster::homogeneous(nodes, node);
  } else {
    throw std::invalid_argument("unknown --machine '" + machine +
                                "' (local | mn4 | minotauro | power9)");
  }
  options.manager.runtime.scheduler = args.get("scheduler", "priority");
  options.manager.runtime.simulate = args.get_bool("simulate");
  options.manager.runtime.seed = seed;
  options.manager.max_active = static_cast<std::size_t>(args.get_int("max-active", 0));

  options.defaults.driver.trial_constraint.cpus =
      static_cast<unsigned>(args.get_int("trial-cpus", 1));
  options.defaults.driver.epoch_divisor = static_cast<int>(args.get_int("epoch-divisor", 10));
  options.defaults.driver.seed = seed;
  if (args.get_bool("simulate")) options.defaults.driver.workload = workload;
  options.defaults.budget = static_cast<std::size_t>(args.get_int("budget", 16));

  options.state_dir = state_dir;
  options.default_quota.max_active_studies =
      static_cast<std::size_t>(args.get_int("tenant-max-active", 0));
  options.fsync = !args.get_bool("no-fsync");
  options.journal_compact_every =
      static_cast<std::size_t>(args.get_int("journal-compact-every", 256));

  daemon::Server server(std::move(options), dataset);
  daemon::SocketDaemonOptions daemon_options;
  daemon_options.socket_path = socket_path;
  daemon_options.step_seconds = static_cast<double>(args.get_int("step-ms", 50)) / 1000.0;
  daemon_options.max_line_bytes =
      static_cast<std::size_t>(args.get_int("max-line-bytes",
                                            static_cast<long>(json::LineDecoder::kDefaultMaxLineBytes)));
  daemon::SocketDaemon front_end(std::move(daemon_options), server);
  return front_end.run();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("socket", "Unix socket path to listen on", "/tmp/chpo.sock")
      .add_option("state-dir", "checkpoints + shutdown manifest directory (empty = stateless)", "")
      .add_option("dataset", "mnist | cifar", "mnist")
      .add_option("train-samples", "synthetic training set size", "600")
      .add_option("test-samples", "synthetic test set size", "200")
      .add_option("seed", "global seed", "42")
      .add_option("machine", "local | mn4 | minotauro | power9", "local")
      .add_option("nodes", "number of cluster nodes", "1")
      .add_option("scheduler", "fifo | priority | locality", "priority")
      .add_option("trial-cpus", "default cores per experiment (@constraint)", "1")
      .add_option("epoch-divisor", "default epoch scale-down factor", "10")
      .add_option("budget", "default evaluations per study", "16")
      .add_option("max-active", "admit at most N studies at once (0 = all)", "0")
      .add_option("tenant-max-active", "default per-tenant active-study quota (0 = unlimited)",
                  "0")
      .add_option("step-ms", "engine slice between request polls, milliseconds", "50")
      .add_option("journal-compact-every",
                  "journal records between manifest compactions (0 = only at shutdown)", "256")
      .add_option("max-line-bytes", "per-connection request line cap in bytes", "1048576")
      .add_option("log-level", "debug | info | warn", "info")
      .add_flag("no-fsync",
                "skip journal fsync before acknowledgements (faster, crash may lose "
                "the last instants)")
      .add_flag("simulate", "discrete-event backend (virtual time, cluster scale)")
      .add_flag("help", "show this help");

  if (!args.parse(argc, argv) || args.get_bool("help")) {
    if (!args.error().empty()) std::fprintf(stderr, "error: %s\n", args.error().c_str());
    std::fprintf(stderr, "%s",
                 args.usage("chpo_serve",
                            "Serve the HPO runtime over a Unix socket (NDJSON protocol; "
                            "see chpo_ctl).")
                     .c_str());
    return args.get_bool("help") ? 0 : 2;
  }
  try {
    return serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chpo_serve: %s\n", e.what());
    return 1;
  }
}
