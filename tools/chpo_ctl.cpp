// chpo_ctl — command-line client for the chpo_serve daemon.
//
//   chpo_ctl submit space.json --tenant alice --set algorithm=tpe
//   chpo_ctl list | status --study 3 | pause | resume | kill
//   chpo_ctl watch --study 3 --until finished
//   chpo_ctl accounting | stats | quota --tenant alice --weight 2
//   chpo_ctl ping | shutdown
//
// Speaks the NDJSON protocol (src/daemon/protocol.hpp) over the daemon's
// Unix socket and prints replies as flat `key=value` lines, one object per
// line, so shell scripts can grep them. Exit status: 0 on an ok reply,
// 1 on an error reply or transport failure.
#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "jsonlite/json.hpp"
#include "jsonlite/wire.hpp"
#include "support/args.hpp"
#include "support/strings.hpp"

namespace {

using namespace chpo;

/// Blocking NDJSON client over a Unix socket.
class Client {
 public:
  Client(const std::string& path, double timeout_seconds) : timeout_seconds_(timeout_seconds) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
      throw std::runtime_error("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw std::runtime_error("cannot connect to " + path + ": " + std::strerror(errno));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const json::Value& request) {
    const std::string bytes = json::encode_frame(request);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) throw std::runtime_error("send failed: daemon gone?");
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next decoded message; throws on timeout or daemon-side close.
  json::Value next() {
    while (true) {
      if (std::optional<json::Frame> frame = decoder_.next()) {
        if (!frame->ok()) throw std::runtime_error("bad frame from daemon: " + frame->error);
        return std::move(frame->value);
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(timeout_seconds_ * 1000.0));
      if (rc == 0) throw std::runtime_error("timed out waiting for the daemon");
      if (rc < 0 && errno != EINTR) throw std::runtime_error("poll failed");
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n == 0) throw std::runtime_error("daemon closed the connection");
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("read failed");
      }
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  double timeout_seconds_;
  json::LineDecoder decoder_;
};

std::string scalar(const json::Value& v) {
  if (v.is_string()) return v.as_string();
  return json::serialize(v);  // numbers/bools/null serialize as they print
}

/// One object as a flat greppable line: `key=value key2=value2`; nested
/// objects flatten as `outer_inner=value`, the id/ok envelope is skipped.
void print_flat(const json::Value& object, const std::string& prefix = "") {
  for (const auto& [key, value] : object.as_object()) {
    if (prefix.empty() && (key == "id" || key == "ok")) continue;
    if (value.is_object()) {
      print_flat(value, prefix + key + "_");
    } else if (!value.is_array()) {
      std::printf("%s%s=%s ", prefix.c_str(), key.c_str(), scalar(value).c_str());
    }
  }
  if (prefix.empty()) std::printf("\n");
}

int fail(const json::Value& reply) {
  const json::Value* error = reply.find("error");
  std::fprintf(stderr, "chpo_ctl: %s\n",
               error != nullptr && error->is_string() ? error->as_string().c_str()
                                                      : "request failed");
  return 1;
}

bool is_event(const json::Value& message) { return message.find("event") != nullptr; }

/// Wait for the reply to our single request, printing any interleaved
/// watch events (there are none unless we subscribed).
json::Value await_reply(Client& client) {
  while (true) {
    json::Value message = client.next();
    if (!is_event(message)) return message;
    print_flat(message);
  }
}

/// Unique-enough idempotency key for a submit: the daemon's dedup window
/// keys on string request ids, so a retry of this exact invocation (after
/// a daemon crash ate the reply) returns the original study.
std::string make_request_id() {
  std::random_device rd;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ctl-%ld-%08x%08x", static_cast<long>(::getpid()), rd(), rd());
  return buf;
}

/// Reconnect policy: bounded exponential backoff with jitter, shared by
/// the initial connect, request retries, and watch resubscription.
class Backoff {
 public:
  Backoff(int retries, double base_ms)
      : retries_(std::max(1, retries)), base_ms_(std::max(1.0, base_ms)),
        rng_(std::random_device{}()) {}

  int retries() const { return retries_; }

  /// Sleep before retry number `attempt` (0-based). Full jitter keeps a
  /// fleet of clients from stampeding a daemon that just restarted.
  void wait(int attempt) {
    const double ceiling = base_ms_ * static_cast<double>(1 << std::min(attempt, 6));
    std::uniform_real_distribution<double> jitter(0.5, 1.0);
    const double ms = std::min(ceiling * jitter(rng_), 5000.0);
    ::usleep(static_cast<useconds_t>(ms * 1000.0));
  }

 private:
  int retries_;
  double base_ms_;
  std::mt19937 rng_;
};

std::unique_ptr<Client> connect_with_backoff(const std::string& socket, double timeout,
                                             Backoff& backoff) {
  for (int attempt = 0;; ++attempt) {
    try {
      return std::make_unique<Client>(socket, timeout);
    } catch (const std::exception& e) {
      if (attempt + 1 >= backoff.retries()) throw;
      std::fprintf(stderr, "chpo_ctl: %s; retrying (%d/%d)\n", e.what(), attempt + 1,
                   backoff.retries());
      backoff.wait(attempt);
    }
  }
}

int run(const ArgParser& args) {
  const std::string command = args.positional().front();
  const std::string socket = args.get("socket", "/tmp/chpo.sock");
  const double timeout = args.get_double("timeout", 120.0);
  Backoff backoff(static_cast<int>(args.get_int("retries", 5)),
                  args.get_double("backoff-ms", 100.0));

  json::Value request;
  request.set("op", json::Value(command == "watch" ? "watch" : command));
  if (command == "submit")
    request.set("id", json::Value(args.has("id") ? args.get("id") : make_request_id()));
  else
    request.set("id", json::Value(std::int64_t{1}));
  if (args.has("tenant")) request.set("tenant", json::Value(args.get("tenant")));
  if (args.has("study"))
    request.set("study", json::Value(static_cast<std::int64_t>(args.get_int("study", 0))));

  if (command == "submit") {
    if (args.positional().size() < 2)
      throw std::invalid_argument("submit needs a search-space JSON file");
    // The positional file is the search space; --set key=value overrides
    // land beside it in the spec (numbers stay numbers).
    json::Value spec;
    spec.set("space", json::parse_file(args.positional()[1]));
    for (const std::string& assignment : args.get_all("set")) {
      const auto eq = assignment.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument("--set expects key=value, got '" + assignment + "'");
      const std::string key = assignment.substr(0, eq);
      const std::string value = assignment.substr(eq + 1);
      try {
        spec.set(key, json::parse(value));  // number / bool / quoted string
      } catch (const json::JsonError&) {
        spec.set(key, json::Value(value));  // bare word: treat as string
      }
    }
    if (args.get_bool("paused")) spec.set("paused", json::Value(true));
    request.set("spec", spec);
  } else if (command == "quota") {
    if (args.has("weight")) request.set("weight", json::Value(args.get_double("weight", 1.0)));
    if (args.has("max-active"))
      request.set("max_active_studies",
                  json::Value(static_cast<std::int64_t>(args.get_int("max-active", 0))));
  }

  if (command == "watch") {
    std::unique_ptr<Client> client = connect_with_backoff(socket, timeout, backoff);
    client->send(request);
    const std::string until = args.get("until");
    const bool filtered = args.has("study");
    const auto target = static_cast<std::int64_t>(args.get_int("study", 0));
    int failures = 0;
    while (true) {
      json::Value message;
      try {
        message = client->next();
        failures = 0;
      } catch (const std::exception& e) {
        // Daemon gone mid-stream (crash/restart): reconnect and
        // resubscribe, so `watch --until` rides through the restart.
        if (++failures >= backoff.retries()) throw;
        std::fprintf(stderr, "chpo_ctl: %s; resubscribing (%d/%d)\n", e.what(), failures,
                     backoff.retries());
        backoff.wait(failures - 1);
        client = connect_with_backoff(socket, timeout, backoff);
        client->send(request);
        continue;
      }
      if (!is_event(message)) {
        if (const json::Value* ok = message.find("ok"); ok != nullptr && !ok->as_bool())
          return fail(message);
        continue;  // the subscription ack
      }
      print_flat(message);
      if (message.at("event").as_string() != "state") continue;
      if (filtered && message.at("study").as_int() != target) continue;
      const std::string& state = message.at("state").as_string();
      if (until.empty() ? (state == "finished" || state == "killed") : state == until) return 0;
    }
  }

  // One request, one reply — retried over a fresh connection on transport
  // failure. Submits are safe to retry (idempotency key above); the other
  // ops are reads or already-idempotent lifecycle transitions.
  for (int attempt = 0;; ++attempt) {
    try {
      std::unique_ptr<Client> client = connect_with_backoff(socket, timeout, backoff);
      client->send(request);
      const json::Value reply = await_reply(*client);
      if (const json::Value* ok = reply.find("ok"); ok == nullptr || !ok->as_bool())
        return fail(reply);

      // Array-of-objects payloads (list, accounting) print one row per line.
      bool printed_rows = false;
      for (const auto& [key, value] : reply.as_object()) {
        if (!value.is_array()) continue;
        for (const json::Value& row : value.as_array())
          if (row.is_object()) {
            print_flat(row);
            printed_rows = true;
          }
      }
      if (!printed_rows) print_flat(reply);
      return 0;
    } catch (const std::exception& e) {
      if (attempt + 1 >= backoff.retries()) throw;
      std::fprintf(stderr, "chpo_ctl: %s; retrying request (%d/%d)\n", e.what(), attempt + 1,
                   backoff.retries());
      backoff.wait(attempt);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("socket", "daemon Unix socket path", "/tmp/chpo.sock")
      .add_option("tenant", "tenant to act as (submit/quota)", "")
      .add_option("study", "study id (status/pause/resume/kill/watch)", "")
      .add_repeated("set", "submit: spec override key=value (repeatable)")
      .add_option("until", "watch: exit when the study reaches this state", "")
      .add_option("weight", "quota: fair-share weight for the tenant", "")
      .add_option("max-active", "quota: max concurrently active studies", "")
      .add_option("timeout", "seconds to wait for the daemon", "120")
      .add_option("retries", "connect/request attempts before giving up", "5")
      .add_option("backoff-ms", "base retry backoff in ms (exponential, jittered)", "100")
      .add_option("id", "submit: idempotency key (a retry with the same key "
                        "returns the original study; default: generated)", "")
      .add_flag("paused", "submit: admit the study paused (resume it later)")
      .add_flag("help", "show this help");

  const bool parsed = args.parse(argc, argv);
  if (!parsed || args.get_bool("help") || args.positional().empty()) {
    if (!args.error().empty()) std::fprintf(stderr, "error: %s\n", args.error().c_str());
    std::fprintf(
        stderr, "%s",
        args.usage("chpo_ctl <command> [space.json]",
                   "Talk to a running chpo_serve daemon. Commands: ping, submit, list,\n"
                   "status, pause, resume, kill, watch, accounting, stats, quota, shutdown.")
            .c_str());
    return args.get_bool("help") ? 0 : 2;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chpo_ctl: %s\n", e.what());
    return 1;
  }
}
