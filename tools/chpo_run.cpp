// chpo_run — the runcompss-equivalent launcher.
//
// The paper launches HPO as `runcompss application.py json_file`; this tool
// is that workflow as a standalone binary:
//
//   chpo_run search_space.json --algorithm grid --dataset mnist
//            --nodes 2 --machine mn4 --trial-cpus 1 [--simulate]
//            [--trace out] [--graph out.dot] [--csv out.csv]
//
// Runs the selected algorithm over the JSON search space on a synthetic
// dataset, through the task runtime, and writes the report plus optional
// Paraver/Graphviz/CSV artifacts.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "hpo/algorithms.hpp"
#include "hpo/driver.hpp"
#include "hpo/hyperband.hpp"
#include "hpo/importance.hpp"
#include "hpo/report.hpp"
#include "hpo/tpe.hpp"
#include "ml/cost_model.hpp"
#include "ml/dataset.hpp"
#include "jsonlite/json.hpp"
#include "runtime/runtime.hpp"
#include "service/study_manager.hpp"
#include "service/study_spec.hpp"
#include "support/args.hpp"
#include "support/strings.hpp"
#include "trace/gantt.hpp"
#include "trace/prv_writer.hpp"

namespace {

using namespace chpo;

cluster::ClusterSpec make_cluster(const std::string& machine, std::size_t nodes,
                                  const std::string& worker, unsigned worker_cores) {
  cluster::ClusterSpec spec;
  if (machine == "mn4")
    spec = cluster::marenostrum4(nodes);
  else if (machine == "minotauro")
    spec = cluster::minotauro(nodes);
  else if (machine == "power9")
    spec = cluster::power9(nodes);
  else if (machine == "local") {
    cluster::NodeSpec node;
    node.name = "local";
    node.cpus = 4;
    spec = cluster::homogeneous(nodes, node);
  } else {
    throw std::invalid_argument("unknown --machine '" + machine +
                                "' (local | mn4 | minotauro | power9)");
  }
  if (worker == "shared") {
    spec.worker_placement = cluster::WorkerPlacement::SharedCores;
    spec.worker_cores = worker_cores;
  } else if (worker == "dedicated") {
    spec.worker_placement = cluster::WorkerPlacement::DedicatedNode;
  } else if (worker != "none") {
    throw std::invalid_argument("unknown --worker '" + worker + "' (none | shared | dedicated)");
  }
  return spec;
}

/// --studies N: run N concurrent studies (cycling --algorithms) on ONE
/// Runtime through service::StudyManager, then print a per-study report
/// and assert isolation (no cross-study completion leaks, no lineage
/// violations). The multi-study CI smoke greps the summary lines.
///
/// Specs are built as JSON and parsed through service::study_spec_from_json
/// — the exact code path a daemon `submit` request takes, so CLI runs and
/// remote submissions cannot drift apart.
int run_multi(const ArgParser& args, const json::Value& space_json, const ml::Dataset& dataset,
              rt::RuntimeOptions runtime_options, const hpo::DriverOptions& driver_options,
              std::size_t studies) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::vector<std::string> algorithms =
      split(args.get("algorithms", args.get("algorithm", "grid")), ',');

  service::ManagerOptions manager_options;
  manager_options.runtime = std::move(runtime_options);
  manager_options.max_active = static_cast<std::size_t>(args.get_int("max-active", 0));
  service::StudyManager manager(std::move(manager_options), dataset);

  service::StudySpecDefaults defaults;
  defaults.driver = driver_options;
  defaults.budget = static_cast<std::size_t>(args.get_int("budget", 16));

  std::vector<rt::StudyId> ids;
  for (std::size_t i = 0; i < studies; ++i) {
    const std::string& algorithm = algorithms[i % algorithms.size()];
    json::Value spec_json;
    spec_json.set("algorithm", json::Value(algorithm));
    spec_json.set("name", json::Value(algorithm + "-" + std::to_string(i)));
    spec_json.set("space", space_json);
    // Distinct trial seeds per study; one shared checkpoint file would
    // cross-replay between studies, so suffix it per study.
    spec_json.set("seed", json::Value(static_cast<std::int64_t>(seed + i * 1000003ULL)));
    if (!driver_options.checkpoint_path.empty())
      spec_json.set("checkpoint", json::Value(driver_options.checkpoint_path + ".study" +
                                              std::to_string(i)));
    ids.push_back(manager.submit(service::study_spec_from_json(spec_json, defaults)));
  }
  manager.run_all();

  std::vector<hpo::StudySummaryRow> rows;
  for (const rt::StudyId id : ids) {
    const service::StudyStatus status = manager.status(id);
    const hpo::HpoOutcome& outcome = manager.outcome(id);
    std::printf("=== study %u: %s (%s, %s) ===\n", id, status.name.c_str(),
                status.algorithm.c_str(), service::study_state_name(status.state));
    std::printf("%s", hpo::trials_table(outcome.trials).c_str());
    std::printf("%s", hpo::outcome_summary(outcome).c_str());
    hpo::StudySummaryRow row;
    row.name = status.name;
    row.algorithm = status.algorithm;
    row.state = service::study_state_name(status.state);
    row.trials = outcome.trials.size();
    row.best_accuracy =
        outcome.best() ? outcome.best()->result.final_val_accuracy : -1.0;
    row.elapsed_seconds = outcome.elapsed_seconds;
    rows.push_back(std::move(row));
  }
  std::printf("\n%s", hpo::multi_study_summary(rows).c_str());
  if (manager.simulated())
    std::printf("virtual now: %s\n", format_duration(manager.now()).c_str());

  // Isolation invariants (the CI multi-study smoke greps this line):
  std::printf("isolation: leaked completions: %zu, lineage violations: %llu\n",
              manager.leaked_completions(),
              static_cast<unsigned long long>(manager.lineage_violations()));
  if (manager.leaked_completions() != 0 || manager.lineage_violations() != 0) {
    std::fprintf(stderr, "chpo_run: cross-study isolation violated\n");
    return 1;
  }
  for (const rt::StudyId id : ids)
    if (manager.state(id) != service::StudyState::Finished) return 1;
  return 0;
}

int run(const ArgParser& args) {
  const std::string space_path = args.positional().front();
  const json::Value space_json = json::parse_file(space_path);
  const hpo::SearchSpace space = hpo::SearchSpace::from_json(space_json);

  // Dataset: generated before the Runtime so it outlives draining tasks.
  const std::string dataset_name = args.get("dataset", "mnist");
  const auto n_train = static_cast<std::size_t>(args.get_int("train-samples", 600));
  const auto n_test = static_cast<std::size_t>(args.get_int("test-samples", 200));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  ml::Dataset dataset;
  ml::WorkloadModel workload;
  if (dataset_name == "mnist") {
    dataset = ml::make_mnist_like(n_train, n_test, seed);
    workload = ml::mnist_paper_model();
  } else if (dataset_name == "cifar") {
    dataset = ml::make_cifar_like(n_train, n_test, seed);
    workload = ml::cifar_paper_model();
  } else {
    throw std::invalid_argument("unknown --dataset '" + dataset_name + "' (mnist | cifar)");
  }

  rt::RuntimeOptions runtime_options;
  runtime_options.cluster =
      make_cluster(args.get("machine", "local"), static_cast<std::size_t>(args.get_int("nodes", 1)),
                   args.get("worker", "none"),
                   static_cast<unsigned>(args.get_int("worker-cores", 24)));
  runtime_options.scheduler = args.get("scheduler", "priority");
  runtime_options.simulate = args.get_bool("simulate");
  runtime_options.tracing = !args.get_bool("no-trace");
  runtime_options.seed = seed;
  // Chaos: probabilistic node churn (MTTF/MTTR) injected into the run.
  // --no-pfs makes task outputs live only on the producing node, so a node
  // death can orphan committed data and exercise lineage recovery.
  const double mttf = args.get_double("mttf", 0.0);
  if (mttf > 0.0) {
    runtime_options.injector = rt::FaultInjector(seed);
    runtime_options.injector.set_node_chaos(rt::NodeChaosPolicy{
        .mttf_seconds = mttf,
        .mttr_seconds = args.get_double("mttr", 0.0),
        .horizon_seconds = args.get_double("chaos-horizon", 3600.0)});
  }
  if (args.get_bool("no-pfs")) runtime_options.cluster.has_parallel_fs = false;
  // Under heavy churn the default 3 attempts give up too early; chaos runs
  // raise this so trials survive repeated node loss.
  runtime_options.fault_policy.max_attempts =
      static_cast<int>(args.get_int("max-attempts", runtime_options.fault_policy.max_attempts));

  hpo::DriverOptions driver_options;
  driver_options.trial_constraint.cpus = static_cast<unsigned>(args.get_int("trial-cpus", 1));
  driver_options.trial_constraint.gpus = static_cast<unsigned>(args.get_int("trial-gpus", 0));
  driver_options.epoch_divisor = static_cast<int>(args.get_int("epoch-divisor", 10));
  driver_options.epoch_cap = static_cast<int>(args.get_int("epoch-cap", 0));
  driver_options.stop_on_accuracy = args.get_double("stop-on-accuracy", -1.0);
  driver_options.visualise = args.get_bool("visualise");
  driver_options.checkpoint_path = args.get("checkpoint");
  driver_options.cv_folds = static_cast<int>(args.get_int("cv-folds", 1));
  driver_options.seed = seed;
  if (args.get_bool("simulate")) driver_options.workload = workload;
  if (args.get_bool("reuse")) {
    driver_options.reuse.enabled = true;
    driver_options.reuse.merge = !args.get_bool("no-merge");
    driver_options.reuse.cache_dir = args.get("cache-dir");
    const auto cache_mb = args.get_int("cache-mb", 256);
    driver_options.reuse.max_memory_bytes = static_cast<std::size_t>(cache_mb) * 1024 * 1024;
    driver_options.reuse.max_disk_bytes = static_cast<std::size_t>(cache_mb) * 4 * 1024 * 1024;
  }

  const auto studies = static_cast<std::size_t>(args.get_int("studies", 1));
  if (studies > 1)
    return run_multi(args, space_json, dataset, std::move(runtime_options), driver_options,
                     studies);

  rt::Runtime runtime(std::move(runtime_options));
  const std::string algorithm_name = args.get("algorithm", "grid");
  const auto budget = static_cast<std::size_t>(args.get_int("budget", 16));
  hpo::HpoDriver driver(runtime.main_study(), dataset, driver_options);
  hpo::HpoOutcome outcome;
  if (algorithm_name == "grid") {
    hpo::GridSearch algorithm(space);
    outcome = driver.run(algorithm);
  } else if (algorithm_name == "random") {
    hpo::RandomSearch algorithm(space, budget, seed);
    outcome = driver.run(algorithm);
  } else if (algorithm_name == "gp") {
    hpo::GpBayesOpt algorithm(space, {.max_evals = budget, .seed = seed});
    outcome = driver.run(algorithm);
  } else if (algorithm_name == "tpe") {
    hpo::TpeSearch algorithm(space, {.max_evals = budget, .seed = seed});
    outcome = driver.run(algorithm);
  } else if (algorithm_name == "halving") {
    hpo::HalvingOptions halving;
    halving.initial_configs = budget;
    halving.driver = driver_options;
    const hpo::HalvingOutcome halved = hpo::successive_halving(runtime.main_study(), dataset, space, halving);
    for (const auto& rung : halved.rungs)
      for (const auto& trial : rung.trials) outcome.trials.push_back(trial);
    outcome.reuse = halved.reuse;
    std::printf("successive halving best: %s -> %.3f\n",
                hpo::config_brief(halved.best_config).c_str(), halved.best_accuracy);
  } else if (algorithm_name == "hyperband") {
    hpo::HyperbandOptions hb;
    hb.driver = driver_options;
    const hpo::HyperbandOutcome result = hpo::hyperband(runtime.main_study(), dataset, space, hb);
    std::printf("hyperband: %zu trials across %zu brackets, best %.3f (%s)\n",
                result.total_trials, result.brackets.size(), result.best_accuracy,
                hpo::config_brief(result.best_config).c_str());
    for (const auto& bracket : result.brackets)
      for (const auto& rung : bracket.rungs)
        for (const auto& trial : rung.trials) outcome.trials.push_back(trial);
    outcome.reuse = result.reuse;
  } else {
    throw std::invalid_argument("unknown --algorithm '" + algorithm_name +
                                "' (grid | random | gp | tpe | halving | hyperband)");
  }

  std::printf("%s\n", hpo::trials_table(outcome.trials).c_str());
  // events() returns a snapshot by value (the sink is mutex-guarded), so
  // take it once: calling it twice in one range expression would pair
  // begin() and end() from two different temporaries.
  const std::vector<trace::Event> trace_events = runtime.trace().events();
  // Attempt statistics only when something eventful happened (failures,
  // retries, stragglers, backoffs): a clean run keeps a clean report.
  const bool eventful =
      std::any_of(trace_events.begin(), trace_events.end(), [](const auto& e) {
        return e.kind == trace::EventKind::TaskFailure || e.kind == trace::EventKind::TaskRetry ||
               e.kind == trace::EventKind::StragglerDetected ||
               e.kind == trace::EventKind::SpeculativeLaunch ||
               e.kind == trace::EventKind::Backoff;
      });
  if (eventful) std::printf("%s\n", hpo::attempt_stats(trace_events).c_str());
  const auto importance = hpo::hyperparameter_importance(outcome.trials);
  if (!importance.empty())
    std::printf("%s\n", hpo::importance_table(importance).c_str());
  if (!outcome.report.empty()) std::printf("%s\n", outcome.report.c_str());
  std::printf("%s", hpo::outcome_summary(outcome).c_str());
  if (outcome.reuse) std::printf("%s", hpo::reuse_summary(*outcome.reuse).c_str());
  const bool chaotic =
      mttf > 0.0 || runtime.lineage_recoveries() > 0 ||
      std::any_of(trace_events.begin(), trace_events.end(), [](const auto& e) {
        return e.kind == trace::EventKind::NodeDown || e.kind == trace::EventKind::NodeUp ||
               e.kind == trace::EventKind::DataLost || e.kind == trace::EventKind::Quarantine;
      });
  if (chaotic)
    std::printf("%s", hpo::fault_summary(trace_events, runtime.lineage_recoveries(),
                                         runtime.unrecoverable_count(), runtime.node_health())
                          .c_str());
  if (runtime.simulated())
    std::printf("virtual makespan: %s\n", format_duration(runtime.analyze().makespan()).c_str());

  if (args.has("graph")) {
    std::ofstream out(args.get("graph"));
    out << runtime.graph_dot();
    std::printf("task graph written to %s\n", args.get("graph").c_str());
  }
  if (args.has("trace")) {
    trace::write_prv_files(args.get("trace"), runtime.trace().events(), runtime.cluster_spec());
    std::printf("Paraver trace written to %s.prv/.row\n", args.get("trace").c_str());
  }
  if (args.has("csv")) {
    std::ofstream out(args.get("csv"));
    out << hpo::history_csv(outcome.trials);
    std::printf("history CSV written to %s\n", args.get("csv").c_str());
  }
  if (args.get_bool("gantt"))
    std::printf("\n%s", trace::render_gantt(runtime.trace().events(), {.width = 96}).c_str());
  return outcome.trials.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("algorithm", "grid | random | gp | tpe | halving | hyperband", "grid")
      .add_option("dataset", "mnist | cifar", "mnist")
      .add_option("machine", "local | mn4 | minotauro | power9", "local")
      .add_option("nodes", "number of cluster nodes", "1")
      .add_option("worker", "COMPSs worker placement: none | shared | dedicated", "none")
      .add_option("worker-cores", "cores reserved per node when --worker shared", "24")
      .add_option("scheduler", "fifo | priority | locality", "priority")
      .add_option("trial-cpus", "cores per experiment (@constraint)", "1")
      .add_option("trial-gpus", "GPUs per experiment (@constraint)", "0")
      .add_option("budget", "evaluations for random/gp/tpe/halving", "16")
      .add_option("studies", "run N concurrent studies on one runtime", "1")
      .add_option("algorithms", "comma list cycled across --studies (default: --algorithm)", "")
      .add_option("max-active", "admit at most N studies at once (0 = all)", "0")
      .add_option("epoch-divisor", "scale config epochs down by this factor", "10")
      .add_option("epoch-cap", "hard cap on epochs per trial (0 = none)", "0")
      .add_option("stop-on-accuracy", "stop the whole HPO at this val accuracy", "")
      .add_option("train-samples", "synthetic training set size", "600")
      .add_option("test-samples", "synthetic test set size", "200")
      .add_option("seed", "global seed", "42")
      .add_option("graph", "write Graphviz DOT of the task graph here", "")
      .add_option("trace", "write Paraver trace basename here", "")
      .add_option("csv", "write per-epoch history CSV here", "")
      .add_option("checkpoint", "persist/replay completed trials via this JSON file", "")
      .add_option("cv-folds", "k-fold cross-validation per trial (1 = plain split)", "1")
      .add_option("cache-dir", "persistent result-cache directory (with --reuse)", "")
      .add_option("cache-mb", "in-memory cache budget in MiB (disk gets 4x)", "256")
      .add_option("mttf", "chaos: mean seconds between node failures (0 = off)", "")
      .add_option("mttr", "chaos: mean outage seconds before a node rejoins (0 = permanent)", "")
      .add_option("chaos-horizon", "chaos: sample node churn up to this virtual time", "3600")
      .add_option("max-attempts", "retry budget per task (raise under heavy chaos)", "3")
      .add_flag("reuse", "cross-trial reuse: stage trees + content-addressed cache")
      .add_flag("no-merge", "with --reuse: plan one chain per trial (no sharing)")
      .add_flag("no-pfs", "no parallel FS: outputs live on the producing node only")
      .add_flag("simulate", "discrete-event backend (virtual time, cluster scale)")
      .add_flag("visualise", "add visualisation + plot tasks (Figure 2 pipeline)")
      .add_flag("gantt", "print an ASCII Gantt of the trace")
      .add_flag("no-trace", "disable tracing (the paper's overhead flag)")
      .add_flag("help", "show this help");

  if (!args.parse(argc, argv) || args.get_bool("help") || args.positional().empty()) {
    if (!args.error().empty()) std::fprintf(stderr, "error: %s\n", args.error().c_str());
    std::fprintf(stderr, "%s",
                 args.usage("chpo_run <search_space.json>",
                            "Run hyperparameter optimisation through the task runtime "
                            "(the paper's `runcompss application.py json_file`).")
                     .c_str());
    return args.get_bool("help") ? 0 : 2;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chpo_run: %s\n", e.what());
    return 1;
  }
}
